"""Tokenizer for the PowerDrill SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.errors import SqlSyntaxError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "AS", "AND", "OR", "NOT", "IN", "ASC", "DESC", "DISTINCT", "NULL",
    "IS", "BETWEEN", "LIKE",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    value: Any
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.kind is TokenKind.SYMBOL and self.value == symbol


_SYMBOLS = ("!=", "<=", ">=", "=", "<", ">", "(", ")", ",", "*", "+", "-", "/", ";")


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; always ends with an END token."""
    tokens: list[Token] = []
    pos = 0
    n = len(text)
    while pos < n:
        char = text[pos]
        if char.isspace():
            pos += 1
            continue
        if char == "'":
            value, pos = _read_string(text, pos)
            tokens.append(Token(TokenKind.STRING, value, pos))
            continue
        if char.isdigit() or (
            char == "." and pos + 1 < n and text[pos + 1].isdigit()
        ):
            value, pos = _read_number(text, pos)
            tokens.append(Token(TokenKind.NUMBER, value, pos))
            continue
        if char.isalpha() or char == "_":
            start = pos
            while pos < n and (text[pos].isalnum() or text[pos] == "_"):
                pos += 1
            word = text[start:pos]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(TokenKind.KEYWORD, upper, start))
            else:
                tokens.append(Token(TokenKind.IDENT, word, start))
            continue
        for symbol in _SYMBOLS:
            if text.startswith(symbol, pos):
                tokens.append(Token(TokenKind.SYMBOL, symbol, pos))
                pos += len(symbol)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {char!r}", pos)
    tokens.append(Token(TokenKind.END, None, n))
    return tokens


def _read_string(text: str, pos: int) -> tuple[str, int]:
    """Read a single-quoted string with '' as the escape for a quote."""
    start = pos
    pos += 1
    pieces: list[str] = []
    n = len(text)
    while pos < n:
        char = text[pos]
        if char == "'":
            if pos + 1 < n and text[pos + 1] == "'":
                pieces.append("'")
                pos += 2
                continue
            return "".join(pieces), pos + 1
        pieces.append(char)
        pos += 1
    raise SqlSyntaxError("unterminated string literal", start)


def _read_number(text: str, pos: int) -> tuple[int | float, int]:
    start = pos
    n = len(text)
    seen_dot = False
    seen_exp = False
    while pos < n:
        char = text[pos]
        if char.isdigit():
            pos += 1
        elif char == "." and not seen_dot and not seen_exp:
            seen_dot = True
            pos += 1
        elif char in "eE" and not seen_exp and pos > start:
            seen_exp = True
            pos += 1
            if pos < n and text[pos] in "+-":
                pos += 1
        else:
            break
    raw = text[start:pos]
    try:
        if seen_dot or seen_exp:
            return float(raw), pos
        return int(raw), pos
    except ValueError:
        raise SqlSyntaxError(f"malformed number {raw!r}", start) from None
