"""Recursive-descent parser for the PowerDrill SQL dialect.

Grammar (precedence low to high):

    query      := SELECT select_list FROM ident [WHERE or_expr]
                  [GROUP BY expr_list] [HAVING or_expr]
                  [ORDER BY order_list] [LIMIT number] [;]
    or_expr    := and_expr (OR and_expr)*
    and_expr   := not_expr (AND not_expr)*
    not_expr   := NOT not_expr | comparison
    comparison := additive [(=|!=|<|<=|>|>=) additive
                           | [NOT] IN '(' literal_list ')'
                           | IS [NOT] NULL]
    additive   := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/) unary)*
    unary      := '-' unary | primary
    primary    := literal | ident ['(' args ')'] | '(' or_expr ')'
"""

from __future__ import annotations

from typing import Any

from repro.errors import SqlSyntaxError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    Expr,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.functions import AGGREGATE_NAMES, SCALAR_FUNCTIONS, SPECIAL_FUNCTIONS
from repro.sql.lexer import Token, TokenKind, tokenize


def parse_query(text: str) -> Query:
    """Parse a SELECT statement into a :class:`Query`."""
    return _Parser(tokenize(text)).parse_query()


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -----------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.END:
            self._pos += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise SqlSyntaxError(f"expected {word}", token.position)
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise SqlSyntaxError(f"expected {symbol!r}", token.position)
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    # -- query structure ------------------------------------------------------
    def parse_query(self) -> Query:
        self._expect_keyword("SELECT")
        select = self._select_list()
        self._expect_keyword("FROM")
        table_token = self._peek()
        if table_token.kind is not TokenKind.IDENT:
            raise SqlSyntaxError("expected table name", table_token.position)
        self._advance()

        where = None
        if self._accept_keyword("WHERE"):
            where = self._or_expr()

        group_by: tuple[Expr, ...] = ()
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = tuple(self._expr_list())

        having = None
        if self._accept_keyword("HAVING"):
            having = self._or_expr()

        order_by: tuple[OrderItem, ...] = ()
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = tuple(self._order_list())

        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._peek()
            if token.kind is not TokenKind.NUMBER or not isinstance(
                token.value, int
            ):
                raise SqlSyntaxError("LIMIT expects an integer", token.position)
            limit = token.value
            self._advance()

        self._accept_symbol(";")
        tail = self._peek()
        if tail.kind is not TokenKind.END:
            raise SqlSyntaxError(
                f"unexpected trailing input {tail.value!r}", tail.position
            )
        return Query(
            select=tuple(select),
            table=table_token.value,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def _select_list(self) -> list[SelectItem]:
        items = [self._select_item()]
        while self._accept_symbol(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        expr = self._or_expr()
        alias = None
        if self._accept_keyword("AS"):
            token = self._peek()
            if token.kind is not TokenKind.IDENT:
                raise SqlSyntaxError("expected alias name", token.position)
            alias = token.value
            self._advance()
        elif self._peek().kind is TokenKind.IDENT:
            # Implicit alias: SELECT country c
            alias = self._advance().value
        return SelectItem(expr, alias)

    def _expr_list(self) -> list[Expr]:
        exprs = [self._or_expr()]
        while self._accept_symbol(","):
            exprs.append(self._or_expr())
        return exprs

    def _order_list(self) -> list[OrderItem]:
        items = []
        while True:
            expr = self._or_expr()
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
            items.append(OrderItem(expr, descending))
            if not self._accept_symbol(","):
                return items

    # -- expressions ----------------------------------------------------------
    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept_keyword("NOT"):
            return UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> Expr:
        left = self._additive()
        token = self._peek()
        for op in ("=", "!=", "<=", ">=", "<", ">"):
            if token.is_symbol(op):
                self._advance()
                return BinaryOp(op, left, self._additive())
        negated = False
        if token.is_keyword("NOT"):
            # 'NOT IN', 'NOT BETWEEN' or 'NOT LIKE'.
            self._advance()
            if self._accept_keyword("BETWEEN"):
                return UnaryOp("NOT", self._between(left))
            if self._accept_keyword("LIKE"):
                return UnaryOp("NOT", self._like(left))
            self._expect_keyword("IN")
            negated = True
            return self._in_list(left, negated)
        if token.is_keyword("IN"):
            self._advance()
            return self._in_list(left, negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            return self._between(left)
        if token.is_keyword("LIKE"):
            self._advance()
            return self._like(left)
        if token.is_keyword("IS"):
            self._advance()
            is_not = self._accept_keyword("NOT")
            self._expect_keyword("NULL")
            # Encode IS [NOT] NULL as (NOT) IN (NULL): the engine's
            # dictionary machinery handles NULL membership uniformly.
            return InList(left, (None,), negated=is_not)
        return left

    def _in_list(self, operand: Expr, negated: bool) -> InList:
        self._expect_symbol("(")
        values: list[Any] = [self._literal_value()]
        while self._accept_symbol(","):
            values.append(self._literal_value())
        self._expect_symbol(")")
        return InList(operand, tuple(values), negated=negated)

    def _between(self, operand: Expr) -> Expr:
        """``x BETWEEN a AND b`` desugars to ``x >= a AND x <= b``."""
        low = self._additive()
        self._expect_keyword("AND")
        high = self._additive()
        return BinaryOp(
            "AND",
            BinaryOp(">=", operand, low),
            BinaryOp("<=", operand, high),
        )

    def _like(self, operand: Expr) -> Expr:
        """``x LIKE 'pat'`` becomes the boolean ``like(x, 'pat')``."""
        token = self._peek()
        if token.kind is not TokenKind.STRING:
            raise SqlSyntaxError(
                "LIKE expects a string literal pattern", token.position
            )
        self._advance()
        return FuncCall("like", (operand, Literal(token.value)))

    def _literal_value(self) -> Any:
        token = self._peek()
        if token.kind in (TokenKind.STRING, TokenKind.NUMBER):
            self._advance()
            return token.value
        if token.is_keyword("NULL"):
            self._advance()
            return None
        if token.is_symbol("-"):
            self._advance()
            number = self._peek()
            if number.kind is not TokenKind.NUMBER:
                raise SqlSyntaxError("expected number after '-'", number.position)
            self._advance()
            return -number.value
        raise SqlSyntaxError("IN lists accept only literals", token.position)

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self._advance()
                left = BinaryOp(token.value, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.is_symbol("/"):
                self._advance()
                left = BinaryOp(token.value, left, self._unary())
            else:
                return left

    def _unary(self) -> Expr:
        if self._accept_symbol("-"):
            return UnaryOp("-", self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        token = self._peek()
        if token.kind is TokenKind.NUMBER or token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_symbol("("):
            self._advance()
            inner = self._or_expr()
            self._expect_symbol(")")
            return inner
        if token.is_symbol("*"):
            self._advance()
            return Star()
        if token.kind is TokenKind.IDENT:
            self._advance()
            name = token.value
            if self._accept_symbol("("):
                return self._call(name, token.position)
            return FieldRef(name)
        raise SqlSyntaxError(
            f"unexpected token {token.value!r}", token.position
        )

    def _call(self, name: str, position: int) -> Expr:
        upper = name.upper()
        if upper in AGGREGATE_NAMES:
            return self._aggregate(upper, position)
        lower = name.lower()
        if lower not in SCALAR_FUNCTIONS and lower not in SPECIAL_FUNCTIONS:
            raise SqlSyntaxError(f"unknown function {name!r}", position)
        args: list[Expr] = []
        if not self._accept_symbol(")"):
            args.append(self._or_expr())
            while self._accept_symbol(","):
                args.append(self._or_expr())
            self._expect_symbol(")")
        return FuncCall(lower, tuple(args))

    def _aggregate(self, name: str, position: int) -> Aggregate:
        if name == "COUNT":
            if self._accept_keyword("DISTINCT"):
                arg = self._or_expr()
                self._expect_symbol(")")
                return Aggregate("COUNT", arg, distinct=True)
            if self._accept_symbol("*"):
                self._expect_symbol(")")
                return Aggregate("COUNT", Star())
            arg = self._or_expr()
            self._expect_symbol(")")
            return Aggregate("COUNT", arg)
        if name == "APPROX_COUNT_DISTINCT":
            arg = self._or_expr()
            m = 4096
            if self._accept_symbol(","):
                token = self._peek()
                if token.kind is not TokenKind.NUMBER or not isinstance(
                    token.value, int
                ):
                    raise SqlSyntaxError(
                        "APPROX_COUNT_DISTINCT sketch size must be an integer",
                        token.position,
                    )
                m = token.value
                self._advance()
            self._expect_symbol(")")
            return Aggregate(
                "COUNT", arg, distinct=True, approximate=True, m=m
            )
        arg = self._or_expr()
        self._expect_symbol(")")
        return Aggregate(name, arg)
