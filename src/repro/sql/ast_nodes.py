"""AST node types for the PowerDrill SQL dialect.

All nodes are frozen dataclasses with structural equality, and every
expression node renders back to canonical SQL via ``sql()`` — the
canonical form doubles as the cache / virtual-field key for
materialized expressions (Section 5 "Complex Expressions").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Union

Expr = Union[
    "Literal", "FieldRef", "FuncCall", "BinaryOp", "UnaryOp", "InList",
    "Aggregate", "Star",
]


def _sql_literal(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return repr(value)


@dataclass(frozen=True)
class Literal:
    """A constant: string, int, float or NULL."""

    value: Any

    def sql(self) -> str:
        return _sql_literal(self.value)


@dataclass(frozen=True)
class FieldRef:
    """A reference to a column (original or virtual)."""

    name: str

    def sql(self) -> str:
        return self.name


@dataclass(frozen=True)
class Star:
    """``*`` — only valid inside COUNT(*)."""

    def sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class FuncCall:
    """A scalar function application, e.g. ``date(timestamp)``."""

    name: str
    args: tuple[Expr, ...]

    def sql(self) -> str:
        if self.name == "like":
            # LIKE is a keyword: render infix so canonical SQL reparses.
            return f"({self.args[0].sql()} LIKE {self.args[1].sql()})"
        rendered = ", ".join(a.sql() for a in self.args)
        return f"{self.name}({rendered})"


@dataclass(frozen=True)
class BinaryOp:
    """A binary operation; ``op`` is the canonical operator token."""

    op: str  # one of: OR AND = != < <= > >= + - * /
    left: Expr
    right: Expr

    def sql(self) -> str:
        return f"({self.left.sql()} {self.op} {self.right.sql()})"


@dataclass(frozen=True)
class UnaryOp:
    """NOT or unary minus."""

    op: str  # 'NOT' or '-'
    operand: Expr

    def sql(self) -> str:
        if self.op == "NOT":
            return f"(NOT {self.operand.sql()})"
        return f"(-{self.operand.sql()})"


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (v1, v2, ...)`` with literal members."""

    operand: Expr
    values: tuple[Any, ...]
    negated: bool = False

    def sql(self) -> str:
        rendered = ", ".join(_sql_literal(v) for v in self.values)
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({rendered}))"


@dataclass(frozen=True)
class Aggregate:
    """An aggregation over a group: COUNT/SUM/MIN/MAX/AVG/COUNT DISTINCT.

    ``name`` is upper-case. ``distinct`` marks COUNT(DISTINCT x);
    ``approximate`` marks the KMV-based APPROX_COUNT_DISTINCT, with
    ``m`` the sketch size (Section 5 "Count Distinct").
    """

    name: str
    arg: Expr
    distinct: bool = False
    approximate: bool = False
    m: int = 4096

    def sql(self) -> str:
        if self.approximate:
            return f"APPROX_COUNT_DISTINCT({self.arg.sql()}, {self.m})"
        if self.distinct:
            return f"COUNT(DISTINCT {self.arg.sql()})"
        return f"{self.name}({self.arg.sql()})"


@dataclass(frozen=True)
class SelectItem:
    """One projected expression with its output name."""

    expr: Expr
    alias: str | None = None

    def output_name(self) -> str:
        if self.alias is not None:
            return self.alias
        if isinstance(self.expr, FieldRef):
            return self.expr.name
        return self.expr.sql()


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key: an expression or output-column reference."""

    expr: Expr
    descending: bool = False


@dataclass(frozen=True)
class Query:
    """A parsed SELECT query."""

    select: tuple[SelectItem, ...]
    table: str
    where: Expr | None = None
    group_by: tuple[Expr, ...] = field(default=())
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = field(default=())
    limit: int | None = None

    def sql(self) -> str:
        """Render back to canonical SQL."""
        parts = [
            "SELECT "
            + ", ".join(
                item.expr.sql() + (f" AS {item.alias}" if item.alias else "")
                for item in self.select
            ),
            f"FROM {self.table}",
        ]
        if self.where is not None:
            parts.append(f"WHERE {self.where.sql()}")
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.sql() for e in self.group_by))
        if self.having is not None:
            parts.append(f"HAVING {self.having.sql()}")
        if self.order_by:
            rendered = ", ".join(
                item.expr.sql() + (" DESC" if item.descending else " ASC")
                for item in self.order_by
            )
            parts.append(f"ORDER BY {rendered}")
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth first."""
    yield expr
    if isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk(arg)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
    elif isinstance(expr, Aggregate):
        yield from walk(expr.arg)


def referenced_fields(expr: Expr) -> set[str]:
    """All column names referenced anywhere in ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, FieldRef)}
