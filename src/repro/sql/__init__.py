"""SQL front end for the PowerDrill dialect.

The Web UI of the paper translates drag'n'drop interactions into
group-by SQL queries; this package parses that dialect:

``SELECT ... FROM <table> [WHERE ...] [GROUP BY ...] [HAVING ...]
[ORDER BY ... [ASC|DESC]] [LIMIT n]``

with special support (Section 2.4) for the operators ``AND, OR, NOT,
IN, NOT IN, =, !=`` in restrictions, plus range comparisons, arithmetic
and the scalar/aggregate functions of :mod:`repro.sql.functions`.
"""

from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.functions import AGGREGATE_NAMES, SCALAR_FUNCTIONS, apply_scalar
from repro.sql.lexer import Token, TokenKind, tokenize
from repro.sql.parser import parse_query

__all__ = [
    "AGGREGATE_NAMES",
    "Aggregate",
    "BinaryOp",
    "FieldRef",
    "FuncCall",
    "InList",
    "Literal",
    "OrderItem",
    "Query",
    "SCALAR_FUNCTIONS",
    "SelectItem",
    "Star",
    "Token",
    "TokenKind",
    "UnaryOp",
    "apply_scalar",
    "parse_query",
    "tokenize",
]
