"""The Hamming-space view of run-length encoding size — Figures 2-4.

For bit columns compressed with the simplified RLE of Figure 3 (only
run counters are stored), the paper derives: total number of counters =
d (one opening counter per column) + the sum over consecutive row pairs
of their Hamming distance. Each row ordering is a path through the rows
seen as points in {0,1}^d, and minimizing encoding size is the TSP in
Hamming space (NP-hard; Trevisan showed it is even hard to approximate
for d > log n).

These helpers compute both sides of that identity so tests can verify
it and the Figure 2-4 bench can report path lengths next to actual RLE
counter counts.
"""

from __future__ import annotations

import numpy as np

from repro.compress.rle import bit_rle_counter_count
from repro.errors import PartitionError


def hamming_distance(row_a: np.ndarray, row_b: np.ndarray) -> int:
    """Number of differing bits between two 0/1 vectors."""
    if row_a.shape != row_b.shape:
        raise PartitionError("Hamming distance requires equal-length rows")
    return int(np.abs(row_a.astype(np.int8) - row_b.astype(np.int8)).sum())


def hamming_path_length(matrix: np.ndarray, order: np.ndarray | None = None) -> int:
    """Sum of Hamming distances between consecutive rows along ``order``."""
    if matrix.ndim != 2:
        raise PartitionError("expected a 2-d bit matrix")
    rows = matrix if order is None else matrix[order]
    if rows.shape[0] < 2:
        return 0
    diff = np.abs(rows[1:].astype(np.int8) - rows[:-1].astype(np.int8))
    return int(diff.sum())


def rle_counter_total(matrix: np.ndarray, order: np.ndarray | None = None) -> int:
    """Total simplified-RLE counters over all bit columns of ``matrix``.

    Equals ``n_columns + hamming_path_length`` for any non-empty matrix
    (the Figure 3 identity).
    """
    if matrix.ndim != 2:
        raise PartitionError("expected a 2-d bit matrix")
    rows = matrix if order is None else matrix[order]
    return sum(
        bit_rle_counter_count(list(rows[:, column]))
        for column in range(rows.shape[1])
    )
