"""Row reordering to improve compression — Section 3 "Reordering Rows".

Reordering rows never changes SQL results but can shrink run lengths in
the element arrays dramatically. The paper:

- uses "a very easy to implement heuristic which in practice gives good
  results: we sort lexicographically by the field order chosen for the
  partitioning" (:func:`lexicographic_order`);
- recapitulates Johnson et al.'s framing of optimal reordering as a
  travelling-salesperson problem in Hamming space and their nearest-
  neighbour heuristics (:func:`nearest_neighbor_order`), which we
  implement for the Figure 2-4 experiments.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.table import Table
from repro.errors import PartitionError
from repro.partition.codes import factorize


def lexicographic_order(table: Table, fields: Sequence[str]) -> np.ndarray:
    """Permutation sorting rows lexicographically by ``fields``.

    The sort is stable, so rows tied on all fields keep their original
    relative order (keeping results reproducible).
    """
    if not fields:
        raise PartitionError("lexicographic reorder needs at least one field")
    for name in fields:
        if name not in table:
            raise PartitionError(f"reorder field {name!r} not in table")
    code_arrays = [factorize(table.column(name))[0] for name in fields]
    return order_from_codes(code_arrays)


def order_from_codes(code_arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Lexicographic permutation from already-factorized code arrays.

    Lets the import pipeline factorize each partition field once and
    reuse the codes for reordering, partitioning and encoding.
    """
    if not code_arrays:
        raise PartitionError("lexicographic reorder needs at least one field")
    # np.lexsort sorts by the LAST key first; reverse so fields[0] is
    # the primary key.
    return np.lexsort(tuple(reversed(list(code_arrays))))


def reorder_table(table: Table, order: np.ndarray) -> Table:
    """Apply a row permutation to every column of ``table``."""
    if order.size != table.n_rows:
        raise PartitionError(
            f"permutation has {order.size} entries for {table.n_rows} rows"
        )
    return table.take(order)


def nearest_neighbor_order(
    matrix: np.ndarray, block_rows: int | None = 4096
) -> np.ndarray:
    """Greedy nearest-neighbour path through rows in Hamming space.

    ``matrix`` is a (rows x columns) 0/1 array. Starting from row 0,
    repeatedly appends the unvisited row with the smallest Hamming
    distance to the current row (ties: lowest index). Johnson et al.
    "split the data into ranges to deal with the otherwise quadratic
    runtime"; ``block_rows`` does the same — the heuristic runs per
    block of consecutive rows and concatenates the blocks. Pass None to
    run it globally.
    """
    if matrix.ndim != 2:
        raise PartitionError("nearest-neighbour reorder expects a 2-d matrix")
    n = matrix.shape[0]
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if block_rows is None or block_rows >= n:
        return _nearest_neighbor_block(matrix, np.arange(n, dtype=np.int64))
    pieces = []
    for start in range(0, n, block_rows):
        rows = np.arange(start, min(start + block_rows, n), dtype=np.int64)
        pieces.append(_nearest_neighbor_block(matrix, rows))
    return np.concatenate(pieces)


def _nearest_neighbor_block(matrix: np.ndarray, rows: np.ndarray) -> np.ndarray:
    bits = matrix[rows].astype(np.int8)
    n = rows.size
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    current = 0
    visited[0] = True
    order[0] = rows[0]
    for step in range(1, n):
        distances = np.abs(bits - bits[current]).sum(axis=1)
        distances[visited] = np.iinfo(np.int64).max
        current = int(np.argmin(distances))
        visited[current] = True
        order[step] = rows[current]
    return order
