"""Composite range partitioning — Section 2.2.

"The user chooses an ordered set of fields which are used to split the
data iteratively into smaller and smaller chunks. At the start the data
is seen as one large chunk. Successively, the largest chunk is split
into two (ideally evenly balanced) chunks. For such a split the chosen
fields are considered in the given order. The first field with at least
two remaining distinct values is used to essentially do a range split
... The iteration is stopped once no chunk with more rows than a given
threshold, e.g., 50'000, exists."

``partition_table`` returns row-index arrays, one per chunk, so callers
can build chunk storage (or anything else) from them. "Note that after
the partitioning these fields are not treated specially in any way."
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.table import Table
from repro.errors import PartitionError
from repro.partition.codes import factorize


@dataclass(frozen=True)
class PartitionSpec:
    """Configuration for the composite range partitioner.

    ``fields`` should be the 3-5 fields a domain expert would pick as a
    "natural primary key" (Section 2.2's heuristic); ``max_chunk_rows``
    is the split-stop threshold (the paper uses 50'000 on 5M rows).
    """

    fields: tuple[str, ...]
    max_chunk_rows: int = 50_000

    def __post_init__(self) -> None:
        if not self.fields:
            raise PartitionError("partitioning needs at least one field")
        if self.max_chunk_rows < 1:
            raise PartitionError(
                f"max_chunk_rows must be >= 1, got {self.max_chunk_rows}"
            )


@dataclass(order=True)
class _HeapChunk:
    """Heap entry: heaviest chunk first (negated size), FIFO tie-break."""

    neg_size: int
    tick: int
    rows: np.ndarray = field(compare=False)


def _range_split(
    codes: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray] | None:
    """Split ``rows`` on the value ranges of one field's codes.

    Picks the cut between distinct values that best balances the two
    sides. Returns None when the field has fewer than two distinct
    values among these rows.
    """
    chunk_codes = codes[rows]
    distinct, counts = np.unique(chunk_codes, return_counts=True)
    if distinct.size < 2:
        return None
    cumulative = np.cumsum(counts)
    total = cumulative[-1]
    # Cut after distinct[k]: left gets cumulative[k] rows. Choose the k
    # (excluding the last, which would be a no-op) closest to half.
    imbalance = np.abs(cumulative[:-1] - total / 2.0)
    k = int(np.argmin(imbalance))
    boundary = distinct[k]
    left_mask = chunk_codes <= boundary
    return rows[left_mask], rows[~left_mask]


def partition_table(
    table: Table,
    spec: PartitionSpec,
    field_codes: list[np.ndarray] | None = None,
) -> list[np.ndarray]:
    """Partition ``table`` into chunks of at most ``max_chunk_rows`` rows.

    Returns a list of row-index arrays (each sorted ascending so chunk-
    internal row order follows table order). Chunks that cannot be
    split further (all partition fields constant within them) may
    exceed the threshold, mirroring the paper's stopping rule.

    ``field_codes`` optionally supplies pre-factorized codes for
    ``spec.fields`` (one int64 array per field, in spec order) so
    callers that already factorized the partition fields — the import
    pipeline — don't pay for it twice.
    """
    for name in spec.fields:
        if name not in table:
            raise PartitionError(f"partition field {name!r} not in table")
    if field_codes is None:
        field_codes = [factorize(table.column(name))[0] for name in spec.fields]
    elif len(field_codes) != len(spec.fields):
        raise PartitionError(
            f"got {len(field_codes)} code arrays for {len(spec.fields)} fields"
        )

    all_rows = np.arange(table.n_rows, dtype=np.int64)
    if table.n_rows <= spec.max_chunk_rows:
        return [all_rows]

    tick = 0
    heap = [_HeapChunk(-table.n_rows, tick, all_rows)]
    done: list[np.ndarray] = []
    while heap:
        entry = heapq.heappop(heap)
        rows = entry.rows
        if rows.size <= spec.max_chunk_rows:
            done.append(rows)
            continue
        split = None
        for codes in field_codes:
            split = _range_split(codes, rows)
            if split is not None:
                break
        if split is None:
            # No field can distinguish these rows; keep as one chunk.
            done.append(rows)
            continue
        left, right = split
        for part in (left, right):
            tick += 1
            heapq.heappush(heap, _HeapChunk(-part.size, tick, part))
    # Stable order: by first row index, so chunk order tracks table order.
    done.sort(key=lambda chunk_rows: int(chunk_rows[0]) if chunk_rows.size else -1)
    return done
