"""Factorizing raw columns into dense sorted integer codes.

Both the partitioner and the reordering heuristics work on *codes*: a
column's values mapped to their ranks among the sorted distinct values
(NULL first). Ranks preserve order, so a range split on codes is a
range split on values — and codes are exactly the global-ids the
datastore will assign later.

The public :func:`factorize` scans the value types once and dispatches
to the fastest kernel per column type: ``np.unique`` over typed numpy
arrays for int and float columns (NULLs handled by masking), and the
hashed set+dict path for strings — numpy's fixed-width 'U'/'S' sorts
scale with the *longest* string in the column and measure 3-20x slower
than hashing on realistic data. Anything the typed paths cannot
reproduce bit-for-bit (bools, exotic types, NaN, negative zero,
integers beyond the float64-exact range) falls back to
:func:`factorize_scalar` — the original implementation, kept
behaviour-frozen as the equivalence oracle. Equivalence between the
paths is enforced by property tests, not assumed.

One deliberate exception to exact Python semantics: a column mixing
floats with integers beyond the float64-exact range is deduplicated by
*float64 image* (see :func:`_factorize_quotient_by_float64`), because
that is the space its dictionary stores — exact dedup used to emit
dictionaries with equal adjacent floats, which the strictly-sorted
invariant rejects at import time.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.core.table import Column

# Integers with |v| >= 2**53 are not exactly representable as float64,
# so the mixed int/float fast path must not round-trip them.
_FLOAT64_EXACT_INT_BOUND = 2**53


def factorize(column: Column) -> tuple[np.ndarray, list[Any]]:
    """Map a column to (codes, sorted_distinct_values).

    ``codes[i]`` is the rank of row i's value among the sorted distinct
    values; NULL sorts first. Returned codes are int64.
    """
    return factorize_list(column.values)


def factorize_scalar(column: Column) -> tuple[np.ndarray, list[Any]]:
    """Reference scalar implementation (pre-vectorization behaviour)."""
    return _factorize_scalar_list(column.values)


def factorize_list(values: Sequence[Any]) -> tuple[np.ndarray, list[Any]]:
    """Vectorized :func:`factorize` over any sequence of cell values."""
    n = len(values)
    if n == 0:
        return np.empty(0, dtype=np.int64), []
    first = None
    for first in values:
        if first is not None:
            break
    if first is None:
        return np.zeros(n, dtype=np.int64), [None]
    if type(first) is str:
        # Hashed dedup + one dict probe per row is the fast path for
        # strings: numpy would pad every element to the column's widest
        # string before sorting, which measures 3-20x slower here. The
        # hash path handles any value mix, so no full type scan needed
        # (mixed str/number columns raise TypeError there exactly as
        # the pre-vectorization code did).
        return _factorize_scalar_list(values)
    kinds = {type(v) for v in values}
    has_null = type(None) in kinds
    kinds.discard(type(None))
    if kinds == {int}:
        result = _factorize_ints(values, has_null)
    elif kinds == {float} or kinds == {int, float}:
        result = _factorize_numeric(values, has_null)
    else:
        result = None
    if result is None:
        return _factorize_scalar_list(values)
    return result


def _assemble_codes(
    n: int,
    null_mask: np.ndarray | None,
    inverse: np.ndarray,
    ordered_non_null: list[Any],
) -> tuple[np.ndarray, list[Any]]:
    """Merge a non-null inverse with NULL rows (code 0, value ``None``)."""
    if null_mask is None:
        return inverse.astype(np.int64, copy=False), ordered_non_null
    codes = np.empty(n, dtype=np.int64)
    codes[null_mask] = 0
    codes[~null_mask] = inverse.astype(np.int64, copy=False) + 1
    return codes, [None, *ordered_non_null]


def _factorize_ints(
    values: Sequence[Any], has_null: bool
) -> tuple[np.ndarray, list[Any]] | None:
    n = len(values)
    try:
        if has_null:
            null_mask = np.fromiter(
                (v is None for v in values), dtype=bool, count=n
            )
            arr = np.fromiter(
                (v for v in values if v is not None),
                dtype=np.int64,
                count=n - int(null_mask.sum()),
            )
        else:
            null_mask = None
            arr = np.fromiter(values, dtype=np.int64, count=n)
    except OverflowError:
        return None
    uniq, inverse = np.unique(arr, return_inverse=True)
    return _assemble_codes(n, null_mask, inverse, uniq.tolist())


def _factorize_numeric(
    values: Sequence[Any], has_null: bool
) -> tuple[np.ndarray, list[Any]] | None:
    n = len(values)
    if has_null:
        null_mask = np.fromiter((v is None for v in values), dtype=bool, count=n)
        non_null_list = [v for v in values if v is not None]
    else:
        null_mask = None
        non_null_list = list(values)
    non_null = np.empty(len(non_null_list), dtype=object)
    non_null[:] = non_null_list
    try:
        as_float = non_null.astype(np.float64)
    except OverflowError:
        return None
    if np.isnan(as_float).any():
        return None
    if np.signbit(as_float[as_float == 0.0]).any():
        return None
    float_mask = np.fromiter(
        (type(v) is float for v in non_null_list),
        dtype=bool,
        count=non_null.size,
    )
    int_values = as_float[~float_mask]
    if int_values.size and np.abs(int_values).max() >= _FLOAT64_EXACT_INT_BOUND:
        return None
    uniq, inverse = np.unique(as_float, return_inverse=True)
    # The scalar path keeps the first-inserted representative of values
    # that compare equal (e.g. 2 vs 2.0); mirror that by typing each
    # distinct value after its first occurrence in the column.
    first_index = np.full(uniq.size, non_null.size, dtype=np.int64)
    np.minimum.at(first_index, inverse, np.arange(non_null.size))
    rep_is_float = float_mask[first_index]
    ordered = [
        float(v) if is_float else int(v)
        for v, is_float in zip(uniq.tolist(), rep_is_float.tolist())
    ]
    return _assemble_codes(n, null_mask, inverse, ordered)


def _factorize_quotient_by_float64(
    values: Sequence[Any],
) -> tuple[np.ndarray, list[Any]] | None:
    """Factorize a mixed int/float column by its *float64 image*.

    A column that mixes floats with integers beyond the float64-exact
    range is stored as a float64 dictionary, so values whose float64
    images collide (e.g. ``2**61`` and ``float(2**61)``, or ``2**61``
    and ``2**61 + 1``) are one storable value. Deduplicating them
    exactly used to produce a dictionary array with equal adjacent
    floats, which :class:`NumericDictionary` rejects — distinctness
    must be decided in the space the dictionary stores. The first
    occurrence in the column supplies the representative (mirroring
    how ``set`` keeps the first of ``2`` vs ``2.0``). Returns None for
    inputs with NaN or non-float-representable ints, which keep the
    exact semantics.
    """
    rep: dict[float, Any] = {}
    has_null = False
    try:
        for v in values:
            if v is None:
                has_null = True
                continue
            image = float(v)
            if image != image:  # NaN: exact path handles it
                return None
            if image not in rep:
                rep[image] = v
    except OverflowError:  # int beyond float64 range
        return None
    images = sorted(rep)
    offset = 1 if has_null else 0
    rank = {image: code + offset for code, image in enumerate(images)}
    codes = np.fromiter(
        (0 if v is None else rank[float(v)] for v in values),
        dtype=np.int64,
        count=len(values),
    )
    ordered = ([None] if has_null else []) + [rep[image] for image in images]
    return codes, ordered


def _factorize_scalar_list(values: Sequence[Any]) -> tuple[np.ndarray, list[Any]]:
    distinct = set(values)
    has_null = None in distinct
    distinct.discard(None)
    kinds = {type(v) for v in distinct}
    if kinds == {int, float} and any(
        type(v) is int and abs(v) >= _FLOAT64_EXACT_INT_BOUND for v in distinct
    ):
        result = _factorize_quotient_by_float64(values)
        if result is not None:
            return result
    ordered: list[Any] = ([None] if has_null else []) + sorted(distinct)
    rank = {value: code for code, value in enumerate(ordered)}
    # map(rank.__getitem__, ...) probes the dict without a Python frame
    # per row; exceptions (KeyError, unhashable TypeError) are the same
    # as the ``rank[value]`` spelling.
    codes = np.fromiter(
        map(rank.__getitem__, values),
        dtype=np.int64,
        count=len(values),
    )
    return codes, ordered
