"""Factorizing raw columns into dense sorted integer codes.

Both the partitioner and the reordering heuristics work on *codes*: a
column's values mapped to their ranks among the sorted distinct values
(NULL first). Ranks preserve order, so a range split on codes is a
range split on values — and codes are exactly the global-ids the
datastore will assign later.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.table import Column


def factorize(column: Column) -> tuple[np.ndarray, list[Any]]:
    """Map a column to (codes, sorted_distinct_values).

    ``codes[i]`` is the rank of row i's value among the sorted distinct
    values; NULL sorts first. Returned codes are int64.
    """
    distinct = set(column.values)
    has_null = None in distinct
    distinct.discard(None)
    ordered: list[Any] = ([None] if has_null else []) + sorted(distinct)
    rank = {value: code for code, value in enumerate(ordered)}
    codes = np.fromiter(
        (rank[value] for value in column.values),
        dtype=np.int64,
        count=len(column),
    )
    return codes, ordered
