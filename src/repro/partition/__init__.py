"""Import-time data organization: partitioning and row reordering.

- :mod:`repro.partition.composite` -- Section 2.2's composite range
  partitioning with "heaviest first" splitting.
- :mod:`repro.partition.reorder` -- Section 3's row-reordering
  heuristics (lexicographic by partition field order, plus the
  nearest-neighbour Hamming-space TSP heuristic of Johnson et al.).
- :mod:`repro.partition.hamming` -- the Hamming-path view of RLE size
  behind Figures 2-4.
"""

from repro.partition.composite import PartitionSpec, partition_table
from repro.partition.hamming import (
    hamming_distance,
    hamming_path_length,
    rle_counter_total,
)
from repro.partition.reorder import (
    lexicographic_order,
    nearest_neighbor_order,
    reorder_table,
)

__all__ = [
    "PartitionSpec",
    "hamming_distance",
    "hamming_path_length",
    "lexicographic_order",
    "nearest_neighbor_order",
    "partition_table",
    "reorder_table",
    "rle_counter_total",
]
