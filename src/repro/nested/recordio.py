"""record-io with repeated fields — the protobuf wire format, faithfully.

In the protocol-buffer wire encoding a repeated field is simply its tag
appearing multiple times within one record; this module extends the
flat record-io of :mod:`repro.formats.recordio` accordingly, writing
and reading :class:`~repro.nested.table.NestedTable` instances.
"""

from __future__ import annotations

import os
import struct

from repro.compress.varint import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
)
from repro.core.table import DataType
from repro.errors import TableError
from repro.nested.table import NestedColumn, NestedTable

_WIRE_VARINT = 0
_WIRE_FIXED64 = 1
_WIRE_BYTES = 2


def _encode_value(value, dtype: DataType, field_number: int) -> bytes:
    out = bytearray()
    if dtype is DataType.STRING:
        raw = value.encode("utf-8")
        out += encode_varint((field_number << 3) | _WIRE_BYTES)
        out += encode_varint(len(raw))
        out += raw
    elif dtype is DataType.INT:
        out += encode_varint((field_number << 3) | _WIRE_VARINT)
        out += encode_zigzag(int(value))
    else:
        out += encode_varint((field_number << 3) | _WIRE_FIXED64)
        out += struct.pack("<d", float(value))
    return bytes(out)


def write_nested_recordio(table: NestedTable, path: str) -> int:
    """Write ``table``; repeated fields emit one tagged entry per element."""
    names = table.field_names
    columns = [table.column(name) for name in names]
    with open(path, "wb") as handle:
        for record_index in range(table.n_records):
            body = bytearray()
            for field_number, column in enumerate(columns, start=1):
                value = column.values[record_index]
                if column.repeated:
                    for element in value:
                        if element is not None:
                            body += _encode_value(
                                element, column.dtype, field_number
                            )
                elif value is not None:
                    body += _encode_value(value, column.dtype, field_number)
            handle.write(encode_varint(len(body)))
            handle.write(bytes(body))
    return os.path.getsize(path)


def read_nested_recordio(
    path: str,
    field_names: list[str],
    dtypes: list[DataType],
    repeated: list[bool],
) -> NestedTable:
    """Read a file written by :func:`write_nested_recordio`.

    The schema (names, types, repeated flags) travels out of band, as
    with real protocol buffers.
    """
    if not len(field_names) == len(dtypes) == len(repeated):
        raise TableError("schema lists must have equal lengths")
    n_fields = len(field_names)
    buffers: list[list] = [[] for __ in range(n_fields)]
    with open(path, "rb") as handle:
        data = handle.read()
    pos = 0
    total = len(data)
    while pos < total:
        length, pos = decode_varint(data, pos)
        end = pos + length
        if end > total:
            raise TableError("truncated nested record")
        record: list = [
            [] if is_repeated else None for is_repeated in repeated
        ]
        while pos < end:
            tag, pos = decode_varint(data, pos)
            field_number = tag >> 3
            wire_type = tag & 0b111
            if not 1 <= field_number <= n_fields:
                raise TableError(f"field number {field_number} out of range")
            if wire_type == _WIRE_VARINT:
                value, pos = decode_zigzag(data, pos)
            elif wire_type == _WIRE_FIXED64:
                (value,) = struct.unpack_from("<d", data, pos)
                pos += 8
            elif wire_type == _WIRE_BYTES:
                size, pos = decode_varint(data, pos)
                value = data[pos : pos + size].decode("utf-8")
                pos += size
            else:
                raise TableError(f"unknown wire type {wire_type}")
            index = field_number - 1
            if repeated[index]:
                record[index].append(value)
            else:
                record[index] = value
        for index in range(n_fields):
            buffers[index].append(record[index])
    columns = [
        NestedColumn(name, buffer, dtype=dtype, repeated=is_repeated)
        for name, buffer, dtype, is_repeated in zip(
            field_names, buffers, dtypes, repeated
        )
    ]
    return NestedTable(columns)
