"""Nested tables: records with repeated (list-valued) fields.

A :class:`NestedTable` holds records where each field is either scalar
(one value per record, possibly NULL) or *repeated* (a list of zero or
more values per record). Flattening turns it into the flat relational
shape the column-store imports:

- one output row per element of the flattened repeated field (a record
  with an empty list contributes one row with NULL there, so records
  are never silently dropped);
- scalar fields are duplicated across their record's rows;
- a synthetic ``__record_id`` column preserves record identity —
  ``COUNT(DISTINCT __record_id)`` counts records, ``COUNT(*)`` counts
  flattened values, mirroring the record/value duality of nested
  stores.

Only one repeated field can be flattened per derived table (flattening
two independently repeated fields would fabricate a cross product); to
analyze several, derive one flat table per repeated field.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.core.table import Column, DataType, Table
from repro.errors import TableError

#: Name of the synthetic record-identity column added by flatten().
RECORD_ID_FIELD = "__record_id"


class NestedColumn:
    """A named field over records: scalar or repeated."""

    __slots__ = ("name", "dtype", "repeated", "values")

    def __init__(
        self,
        name: str,
        values: Sequence[Any],
        dtype: DataType | None = None,
        repeated: bool = False,
    ) -> None:
        self.name = name
        self.repeated = repeated
        self.values = list(values)
        if repeated:
            flattened: list[Any] = []
            for record_values in self.values:
                if not isinstance(record_values, (list, tuple)):
                    raise TableError(
                        f"repeated field {name!r} needs list values per "
                        f"record, got {type(record_values).__name__}"
                    )
                flattened.extend(record_values)
            self.dtype = (
                dtype if dtype is not None else DataType.infer(flattened)
            )
            for value in flattened:
                self.dtype.validate(value)
        else:
            self.dtype = (
                dtype if dtype is not None else DataType.infer(self.values)
            )
            for value in self.values:
                self.dtype.validate(value)

    def __len__(self) -> int:
        return len(self.values)


class NestedTable:
    """Records with scalar and repeated fields."""

    def __init__(self, columns: Sequence[NestedColumn]) -> None:
        if not columns:
            raise TableError("a nested table needs at least one column")
        lengths = {len(column) for column in columns}
        if len(lengths) != 1:
            raise TableError(f"ragged columns: lengths {sorted(lengths)}")
        self._columns = {column.name: column for column in columns}
        if len(self._columns) != len(columns):
            raise TableError("duplicate column names")
        self._order = [column.name for column in columns]
        self._n_records = lengths.pop()

    @property
    def n_records(self) -> int:
        return self._n_records

    @property
    def field_names(self) -> list[str]:
        return list(self._order)

    @property
    def repeated_fields(self) -> list[str]:
        return [
            name for name in self._order if self._columns[name].repeated
        ]

    def column(self, name: str) -> NestedColumn:
        try:
            return self._columns[name]
        except KeyError:
            raise TableError(
                f"unknown field {name!r}; table has {self._order}"
            ) from None

    def record(self, index: int) -> dict[str, Any]:
        """One record as a field -> value(s) dict."""
        if not 0 <= index < self._n_records:
            raise TableError(f"record {index} out of range")
        return {
            name: self._columns[name].values[index] for name in self._order
        }

    # -- flattening ---------------------------------------------------------
    def flatten(self, repeated_field: str | None = None) -> Table:
        """Denormalize into a flat :class:`Table`.

        ``repeated_field`` selects which repeated field to explode (may
        be omitted when the table has at most one). All other fields
        must be scalar. The result carries :data:`RECORD_ID_FIELD`.
        """
        repeated = self.repeated_fields
        if repeated_field is None:
            if len(repeated) > 1:
                raise TableError(
                    f"table has several repeated fields {repeated}; "
                    "pass repeated_field to choose one"
                )
            repeated_field = repeated[0] if repeated else None
        elif repeated_field not in self._columns:
            raise TableError(f"unknown field {repeated_field!r}")
        elif not self._columns[repeated_field].repeated:
            raise TableError(f"field {repeated_field!r} is not repeated")
        others = [
            name
            for name in self._order
            if name != repeated_field and self._columns[name].repeated
        ]
        if others:
            raise TableError(
                f"cannot flatten {repeated_field!r} while {others} are "
                "also repeated; derive one flat table per repeated field"
            )

        record_ids: list[int] = []
        flattened: list[Any] = []
        if repeated_field is None:
            record_ids = list(range(self._n_records))
        else:
            for record_index, values in enumerate(
                self._columns[repeated_field].values
            ):
                if values:
                    for value in values:
                        record_ids.append(record_index)
                        flattened.append(value)
                else:
                    # Empty list: keep the record with a NULL element.
                    record_ids.append(record_index)
                    flattened.append(None)

        columns = [Column(RECORD_ID_FIELD, record_ids, DataType.INT)]
        for name in self._order:
            source = self._columns[name]
            if name == repeated_field:
                columns.append(Column(name, flattened, source.dtype))
            else:
                columns.append(
                    Column(
                        name,
                        [source.values[rid] for rid in record_ids],
                        source.dtype,
                    )
                )
        return Table(columns)
