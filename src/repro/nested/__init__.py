"""The nested relational model — repeated fields, flattened for querying.

"In order to store protocol buffer records with nested and repeated
records (i.e., lists of sub-records), PowerDrill supports a nested
relational model, cf. [5]. For ease of exposition, in the following we
focus on unstructured / flat records" (paper, Notation section).

This package provides the part the paper relies on but elides:

- :class:`~repro.nested.table.NestedTable` — records whose fields may
  be *repeated* (list-valued), the shape of protocol-buffer logs;
- :meth:`~repro.nested.table.NestedTable.flatten` — the denormalizing
  transform into the flat :class:`~repro.core.table.Table` the
  datastore imports ("result from denormalizing a set of relational
  tables"), duplicating scalars per repeated element and keeping a
  record-id column so record-level counts stay recoverable;
- record-io support for repeated fields (the protobuf wire format
  simply repeats the tag).
"""

from repro.nested.recordio import read_nested_recordio, write_nested_recordio
from repro.nested.table import (
    RECORD_ID_FIELD,
    NestedColumn,
    NestedTable,
)

__all__ = [
    "NestedColumn",
    "NestedTable",
    "RECORD_ID_FIELD",
    "read_nested_recordio",
    "write_nested_recordio",
]
