"""Distributed execution on the simulated cluster (Sections 4 and 6).

Shards the table quasi-randomly, builds one datastore per shard, and
executes queries through the computation tree with primary+replica
sub-queries. Demonstrates:

- exact agreement with single-node execution,
- replication hiding stragglers,
- the Figure 5 effect: latency grows with bytes loaded from disk, and
  most queries run entirely from memory once the working set is warm.

Run:  python examples/distributed_cluster.py
"""

from __future__ import annotations

import math

from repro import (
    ClusterConfig,
    DataStore,
    DataStoreOptions,
    DrillDownConfig,
    LogsConfig,
    MachineConfig,
    SimulatedCluster,
    generate_drilldown_sessions,
    generate_query_logs,
)


def main() -> None:
    table = generate_query_logs(LogsConfig(n_rows=60_000))
    options = DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=600,
        reorder_rows=True,
    )

    cluster = SimulatedCluster.build(
        table,
        n_shards=8,
        store_options=options,
        config=ClusterConfig(
            n_machines=8,
            replication=2,
            seed=1,
            machine=MachineConfig(
                memory_bytes=1024 * 1024,
                disk_bandwidth_bytes_per_second=10e6,
            ),
            straggler_probability=0.1,
            straggler_slowdown=20.0,
        ),
    )
    single = DataStore.from_table(table, options)

    query = (
        "SELECT country, COUNT(*) as c, AVG(latency) as a FROM data "
        "GROUP BY country ORDER BY c DESC LIMIT 5"
    )
    print(f"query: {query}\n")
    distributed, metrics = cluster.execute(query)
    local = single.execute(query)
    print("distributed result:")
    for row in distributed.rows():
        print(f"  {row}")
    print(
        f"\nmatches single node: "
        f"{distributed.sorted_rows() == local.sorted_rows()}"
    )
    print(
        f"simulated latency {1000 * metrics.latency_seconds:.1f} ms over "
        f"{metrics.sub_queries} sub-queries "
        f"({metrics.replica_wins} answered by the replica first); "
        f"{metrics.bytes_loaded_from_disk / 1024:.0f} KB loaded from disk"
    )

    # -- replication vs stragglers ----------------------------------------
    print("\nreplication vs stragglers (20 repeats, warm memory):")
    for replication in (1, 2):
        trial = SimulatedCluster.build(
            table,
            n_shards=8,
            store_options=options,
            config=ClusterConfig(
                n_machines=8,
                replication=replication,
                seed=9,
                straggler_probability=0.15,
                straggler_slowdown=30.0,
            ),
        )
        trial.execute(query)
        latencies = sorted(
            trial.execute(query)[1].latency_seconds for __ in range(20)
        )
        mean = sum(latencies) / len(latencies)
        print(
            f"  replication={replication}: mean {1000 * mean:7.1f} ms, "
            f"p90 {1000 * latencies[17]:7.1f} ms"
        )

    # -- Figure 5: latency by disk bytes ------------------------------------
    print("\nFigure 5 shape — drill-down mix, latency by disk-bytes bucket:")
    clicks = generate_drilldown_sessions(
        table, DrillDownConfig(n_sessions=6, clicks_per_session=3, seed=2)
    )
    buckets: dict[int, list[float]] = {}
    for batch in clicks:
        for sql in batch:
            __, m = cluster.execute(sql)
            key = (
                -1
                if m.bytes_loaded_from_disk == 0
                else int(math.log2(m.bytes_loaded_from_disk))
            )
            buckets.setdefault(key, []).append(m.latency_seconds)
    for key in sorted(buckets):
        values = buckets[key]
        label = "memory" if key == -1 else f"2^{key} B"
        print(
            f"  {label:>8}: {len(values):>4} queries, "
            f"avg {1000 * sum(values) / len(values):6.2f} ms"
        )
    in_memory = len(buckets.get(-1, []))
    total = sum(len(v) for v in buckets.values())
    print(
        f"\n{in_memory / total:.0%} of queries needed no disk at all "
        "(paper: >70%)"
    )


if __name__ == "__main__":
    main()
