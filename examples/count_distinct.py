"""Approximate COUNT DISTINCT with KMV sketches (Section 5).

Counts the number of distinct table names per country exactly and with
KMV sketches of growing size m, showing the ~1/sqrt(m) error decay and
why the paper considers the overhead "comparatively small".

Run:  python examples/count_distinct.py
"""

from __future__ import annotations

import time

from repro import DataStore, DataStoreOptions, LogsConfig, generate_query_logs


def main() -> None:
    table = generate_query_logs(LogsConfig(n_rows=120_000))
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=1200,
            reorder_rows=True,
        ),
    )

    exact_sql = (
        "SELECT country, COUNT(DISTINCT table_name) as cd FROM data "
        "GROUP BY country ORDER BY cd DESC"
    )
    started = time.perf_counter()
    exact = store.execute(exact_sql).rows()
    exact_ms = 1000 * (time.perf_counter() - started)
    exact_by_country = dict(exact)

    print("exact distinct table names per country "
          f"({exact_ms:.1f} ms, top 8):")
    for country, count in exact[:8]:
        print(f"  {country}: {count}")

    print(f"\n{'m':>6} {'mean err':>9} {'max err':>8} {'ms':>8}")
    for m in (32, 128, 512, 2048, 8192):
        sql = (
            f"SELECT country, APPROX_COUNT_DISTINCT(table_name, {m}) as cd "
            "FROM data GROUP BY country ORDER BY cd DESC"
        )
        started = time.perf_counter()
        approx = dict(store.execute(sql).rows())
        elapsed_ms = 1000 * (time.perf_counter() - started)
        errors = [
            abs(approx.get(c, 0) - n) / n for c, n in exact_by_country.items()
        ]
        print(
            f"{m:>6} {sum(errors) / len(errors):>9.2%} "
            f"{max(errors):>8.2%} {elapsed_ms:>8.1f}"
        )

    print(
        "\nKMV keeps the m smallest value hashes; the estimate is m / v "
        "where v is the largest retained hash. Sketches merge, so the "
        "distributed tree aggregates them level by level."
    )


if __name__ == "__main__":
    main()
