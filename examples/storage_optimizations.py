"""Walk the Section 3 optimization ladder and watch memory shrink.

Builds the same dataset as Basic -> Chunks -> OptCols -> OptDicts, then
applies Zippy and row reordering, printing the footprint of each field
at every stage — the Table 4 story, interactively.

Run:  python examples/storage_optimizations.py
"""

from __future__ import annotations

from repro import DataStore, DataStoreOptions, LogsConfig, generate_query_logs
from repro.compress.registry import get_codec


def field_bytes(store: DataStore, name: str) -> int:
    return store.field(name).size_bytes()


def compressed_bytes(store: DataStore, name: str) -> int:
    codec = get_codec("zippy")
    field = store.field(name)
    total = len(codec.compress(field.dictionary.to_bytes()))
    for chunk in field.chunks:
        total += len(codec.compress(chunk.to_bytes()))
    return total


def main() -> None:
    table = generate_query_logs(
        LogsConfig(n_rows=60_000, n_days=15, n_teams=20, datasets_per_team=8)
    )
    fields = ["country", "table_name", "latency"]
    partition = ("country", "table_name")

    stages = {
        "Basic": DataStoreOptions(
            optimized_columns=False, optimized_dicts=False
        ),
        "Chunks": DataStoreOptions(
            partition_fields=partition,
            max_chunk_rows=600,
            optimized_columns=False,
            optimized_dicts=False,
        ),
        "OptCols": DataStoreOptions(
            partition_fields=partition,
            max_chunk_rows=600,
            optimized_dicts=False,
        ),
        "OptDicts": DataStoreOptions(
            partition_fields=partition, max_chunk_rows=600
        ),
        "Reorder": DataStoreOptions(
            partition_fields=partition, max_chunk_rows=600, reorder_rows=True
        ),
    }

    print(f"{table.n_rows} rows; per-field encoded bytes by stage\n")
    header = f"{'stage':<16}" + "".join(f"{name:>14}" for name in fields)
    print(header)
    stores = {}
    for stage_name, options in stages.items():
        store = DataStore.from_table(table, options)
        stores[stage_name] = store
        sizes = "".join(
            f"{field_bytes(store, name):>14,}" for name in fields
        )
        print(f"{stage_name:<16}{sizes}")

    for stage_name in ("OptDicts", "Reorder"):
        store = stores[stage_name]
        sizes = "".join(
            f"{compressed_bytes(store, name):>14,}" for name in fields
        )
        print(f"{stage_name + ' +Zippy':<16}{sizes}")

    basic = stores["Basic"]
    final = stores["Reorder"]
    for name in fields:
        ratio = field_bytes(basic, name) / compressed_bytes(final, name)
        print(f"\n{name}: total reduction {ratio:.1f}x", end="")
    print(
        "\n\npaper: 'Combined, these techniques reduce the data size by up "
        "to a factor of 50x.'"
    )


if __name__ == "__main__":
    main()
