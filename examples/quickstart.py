"""Quickstart: build a PowerDrill-style store and run the paper's queries.

Generates the synthetic query-log table (the stand-in for the paper's
5M-row PowerDrill logs), imports it with composite range partitioning
and row reordering, and runs the three experimental queries of
Section 2.5, printing results and scan statistics.

Run:  python examples/quickstart.py [n_rows]
"""

from __future__ import annotations

import sys
import time

from repro import (
    DataStore,
    DataStoreOptions,
    LogsConfig,
    generate_query_logs,
    paper_queries,
)
from repro.analysis import fsck_store


def main() -> None:
    n_rows = int(sys.argv[1]) if len(sys.argv) > 1 else 100_000

    print(f"Generating {n_rows} rows of synthetic PowerDrill query logs ...")
    table = generate_query_logs(LogsConfig(n_rows=n_rows))
    print(
        f"  fields: {table.field_names}\n"
        f"  distinct table names: "
        f"{len(set(table.column('table_name').values))}"
    )

    print("\nImporting (reorder -> partition -> double-dictionary encode) ...")
    started = time.perf_counter()
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=max(500, n_rows // 100),
            reorder_rows=True,
        ),
    )
    print(
        f"  {store.n_chunks} chunks in {time.perf_counter() - started:.2f}s; "
        f"encoded size {store.total_size_bytes() / 1024:.0f} KB"
    )

    # Verify the freshly-built store satisfies the invariant catalog
    # (dictionary sortedness, chunk-dict subsets, partition ranges, ...)
    # that chunk skipping and the bincount inner loop rely on.
    report = fsck_store(store)
    print(f"  {report.summary()}")
    if not report.ok:
        print(report.to_text())
        raise SystemExit(1)

    for index, sql in enumerate(paper_queries(), start=1):
        print(f"\nQuery {index}: {sql}")
        store.execute(sql)  # warm-up: materializes virtual fields
        result = store.execute(sql)
        for row in result.rows()[:5]:
            print(f"  {row}")
        stats = result.stats
        print(
            f"  -> {1000 * result.elapsed_seconds:.1f} ms | "
            f"fields {stats.fields_accessed} | "
            f"memory {stats.memory_bytes / 1024:.0f} KB"
        )

    # A drill-down restriction: partitioning lets most chunks be skipped.
    country = table.column("country").values[0]
    sql = (
        "SELECT table_name, COUNT(*) as c FROM data "
        f"WHERE country IN ('{country}') "
        "GROUP BY table_name ORDER BY c DESC LIMIT 5"
    )
    print(f"\nRestricted query: {sql}")
    result = store.execute(sql)
    for row in result.rows():
        print(f"  {row}")
    stats = result.stats
    print(
        f"  -> skipped {stats.skip_fraction:.1%} of rows, "
        f"cached {stats.cache_fraction:.1%}, "
        f"scanned {stats.scan_fraction:.1%}"
    )


if __name__ == "__main__":
    main()
