"""A Web-UI drill-down session: one mouse click = ~20 SQL queries.

Reproduces the paper's motivating scenario: a user starts broad, then
keeps adding IN restrictions ("drilling down"). Each click re-renders
all charts, i.e. fires a batch of group-by queries with a shared WHERE
clause. Because restrictions correlate with the partition fields, the
deeper the drill-down the more chunks are skipped — the Section 6
production effect (92.41% skipped / 5.02% cached / 2.66% scanned).

Run:  python examples/drilldown_session.py
"""

from __future__ import annotations

from repro import (
    DataStore,
    DataStoreOptions,
    DrillDownConfig,
    LogsConfig,
    generate_drilldown_sessions,
    generate_query_logs,
)


def main() -> None:
    table = generate_query_logs(LogsConfig(n_rows=80_000))
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=800,
            reorder_rows=True,
        ),
    )
    clicks = generate_drilldown_sessions(
        table,
        DrillDownConfig(
            n_sessions=3, clicks_per_session=4, queries_per_click=20, seed=5
        ),
    )

    print(
        f"{store.n_rows} rows in {store.n_chunks} chunks; "
        f"{len(clicks)} clicks x {len(clicks[0])} queries each\n"
    )
    print(
        f"{'click':>5} {'cells (M)':>10} {'ms/click':>9} "
        f"{'skipped':>8} {'cached':>7} {'scanned':>8}  example restriction"
    )

    overall = {"skipped": 0, "cached": 0, "scanned": 0, "total": 0}
    for click_index, batch in enumerate(clicks):
        skipped = cached = scanned = total = cells = 0
        elapsed = 0.0
        for sql in batch:
            result = store.execute(sql)
            stats = result.stats
            skipped += stats.rows_skipped
            cached += stats.rows_cached
            scanned += stats.rows_scanned
            total += stats.rows_total
            cells += stats.rows_total * 4  # hypothetical full-scan cells
            elapsed += result.elapsed_seconds
        overall["skipped"] += skipped
        overall["cached"] += cached
        overall["scanned"] += scanned
        overall["total"] += total
        where = batch[0].split(" WHERE ")
        restriction = where[1].split(" GROUP BY")[0][:48] if len(where) > 1 else "(none)"
        print(
            f"{click_index:>5} {cells / 1e6:>10.1f} {1000 * elapsed:>9.1f} "
            f"{skipped / total:>8.1%} {cached / total:>7.1%} "
            f"{scanned / total:>8.1%}  {restriction}"
        )

    total = overall["total"]
    print(
        f"\noverall: skipped {overall['skipped'] / total:.2%}, "
        f"cached {overall['cached'] / total:.2%}, "
        f"scanned {overall['scanned'] / total:.2%}"
    )
    print("paper (production, 3 months): 92.41% / 5.02% / 2.66%")


if __name__ == "__main__":
    main()
