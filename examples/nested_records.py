"""Nested records: protobuf-style logs with repeated fields.

The paper's input data are protocol-buffer logs whose records may carry
repeated sub-records; PowerDrill "supports a nested relational model".
This example builds web-search records with a repeated
``clicked_rank`` field, round-trips them through the nested record-io
wire format, flattens them into the relational shape the column-store
imports, and shows the record-vs-value counting duality.

Run:  python examples/nested_records.py
"""

from __future__ import annotations

import random
import tempfile

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import DataType
from repro.monitoring import QueryLogCollector
from repro.nested import (
    NestedColumn,
    NestedTable,
    read_nested_recordio,
    write_nested_recordio,
)


def build_search_logs(n_records: int = 30_000, seed: int = 7) -> NestedTable:
    rng = random.Random(seed)
    countries = [rng.choice(["DE", "US", "FR", "JP", "GB"]) for __ in range(n_records)]
    terms = ["cat", "dog", "auto", "flights", "pizza", "weather", "news"]
    queries = [
        " ".join(rng.sample(terms, rng.randint(1, 2))) for __ in range(n_records)
    ]
    clicks = []
    for __ in range(n_records):
        n_clicks = rng.choices([0, 1, 2, 3, 5], weights=[25, 40, 20, 10, 5])[0]
        clicks.append(sorted(rng.sample(range(1, 11), n_clicks)))
    return NestedTable(
        [
            NestedColumn("country", countries),
            NestedColumn("query", queries),
            NestedColumn("clicked_rank", clicks, repeated=True),
        ]
    )


def main() -> None:
    nested = build_search_logs()
    print(f"{nested.n_records} search records, repeated field: clicked_rank")

    with tempfile.NamedTemporaryFile(suffix=".rio", delete=False) as handle:
        path = handle.name
    size = write_nested_recordio(nested, path)
    loaded = read_nested_recordio(
        path,
        ["country", "query", "clicked_rank"],
        [DataType.STRING, DataType.STRING, DataType.INT],
        [False, False, True],
    )
    print(f"wire round-trip: {size / 1024:.0f} KB, "
          f"{loaded.n_records} records back")

    flat = loaded.flatten()
    print(f"flattened: {flat.n_rows} rows (one per click; empty lists keep "
          "their record as a NULL row)\n")

    store = DataStore.from_table(
        flat,
        DataStoreOptions(
            partition_fields=("country", "query"),
            max_chunk_rows=2_000,
            reorder_rows=True,
        ),
    )
    collector = QueryLogCollector()

    queries = [
        # value-level vs record-level counting:
        "SELECT COUNT(clicked_rank) as clicks, "
        "COUNT(DISTINCT __record_id) as searches FROM data",
        # click-through per country:
        "SELECT country, COUNT(clicked_rank) as clicks, "
        "COUNT(DISTINCT __record_id) as searches FROM data "
        "GROUP BY country ORDER BY clicks DESC",
        # the paper's motivating restriction, on nested data:
        "SELECT country, COUNT(DISTINCT __record_id) as searches FROM data "
        "WHERE contains(query, 'cat') = 1 GROUP BY country "
        "ORDER BY searches DESC LIMIT 5",
        # average first-clicked rank among records that clicked at all:
        "SELECT country, AVG(clicked_rank) as avg_rank FROM data "
        "WHERE clicked_rank IS NOT NULL GROUP BY country "
        "ORDER BY avg_rank ASC",
    ]
    for sql in queries:
        print(f"-- {sql}")
        result = store.execute(sql)
        collector.record(result)
        for row in result.rows():
            print(f"   {row}")
        print()

    print("session report:")
    print(collector.report())


if __name__ == "__main__":
    main()
