"""Section 5 "Further Optimizing the Global-Dictionaries": sub-dictionaries.

Paper: "When only few chunks are active for a query, there is actually
no need to have the entire dictionary in memory. ... When processing a
query with few active chunks, only a few of these sub-dictionaries need
to be loaded into memory. ... we additionally keep Bloom-filters for
each dictionary [so] one can quickly check whether certain values are
present in a dictionary at all."

This bench resolves drill-down IN restrictions over the table_name
dictionary using the split representation and reports how many bytes
actually became resident versus the full dictionary, plus how often the
Bloom filters avoided a load entirely.
"""

from __future__ import annotations

from benchmarks.helpers import emit_report, fmt_bytes
from repro.storage.subdict import SubDictionarySet


def test_subdictionary_residency(benchmark, reorder_store):
    store = reorder_store
    field = store.field("table_name")
    subdicts = SubDictionarySet.from_field(
        field, hot_fraction=0.02, group_size=8
    )

    # A narrow drill-down: restrictions over values from just three
    # chunks — the few-active-chunks regime the optimization targets.
    probes = []
    for chunk_index in (2, 3, 4):
        chunk_dict = field.chunks[chunk_index].chunk_dict
        for offset in (0, chunk_dict.size // 2, chunk_dict.size - 1):
            gid = int(chunk_dict[offset])
            probes.append((field.dictionary.value(gid), chunk_index, gid))

    def resolve_all():
        for value, chunk_index, __ in probes:
            subdicts.lookup_global_id(value, active_chunks={chunk_index})

    resolve_all()
    resident = subdicts.resident_size_bytes()
    total = subdicts.total_size_bytes()
    stats = subdicts.stats

    # Absent values: Bloom filters should avoid nearly every load.
    before_loads = subdicts.stats.loads
    for index in range(200):
        subdicts.lookup_global_id(f"/not/a/real/table/{index}")
    absent_loads = subdicts.stats.loads - before_loads

    benchmark(resolve_all)

    lines = [
        "Section 5 sub-dictionaries — table_name split into "
        f"{subdicts.n_subdicts} parts ({len(field.dictionary)} values)",
        "",
        f"resident after {len(probes)} narrow lookups: "
        f"{fmt_bytes(resident).strip()} of {fmt_bytes(total).strip()} "
        f"({resident / total:.0%})",
        f"group skips: {stats.group_skips}, bloom skips: {stats.bloom_skips}",
        f"loads triggered by 200 absent-value probes: {absent_loads}",
    ]
    emit_report("subdicts", lines)

    # The few-active-chunks regime must leave most of the dictionary
    # unloaded, and Bloom filters must stop almost all absent probes.
    assert resident < total * 0.5
    assert absent_loads < 20
    # For each correctly resolved probe the gid matched.
    for value, chunk_index, gid in probes:
        subdicts.evict_all()
        assert subdicts.lookup_global_id(
            value, active_chunks={chunk_index}
        ) == gid
