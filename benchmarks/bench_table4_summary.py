"""Table 4: the full optimization ladder, overall memory per stage.

Paper (overall MB):

    Query        1      2      3
    Dremel   27.94  60.37  90.79
    Basic    20.00  41.45  91.23
    Chunks   20.07  47.99  91.32
    OptCols   0.08  22.99  81.32
    OptDicts  0.08  22.98  17.66
    Zippy     0.04  16.32  12.40
    Reorder   0.03  12.13   5.63

The paper's conclusion: "Combined, these techniques reduce the data
size by up to a factor of 50x" (Basic -> Reorder on Query 3 is ~16x;
vs Dremel on Q1 it is ~930x). Shape asserted: the ladder is monotone
non-increasing per query (within a small tolerance for the known
Chunks bump), and the end-to-end reduction on Q3 is large.
"""

from __future__ import annotations

from benchmarks.helpers import (
    PAPER_QUERIES,
    compressed_field_bytes,
    emit_report,
    fmt_bytes,
    query_fields,
    uncompressed_field_bytes,
)

_PAPER = {
    "dremel": {1: 27.94, 2: 60.37, 3: 90.79},
    "basic": {1: 20.00, 2: 41.45, 3: 91.23},
    "chunks": {1: 20.07, 2: 47.99, 3: 91.32},
    "optcols": {1: 0.08, 2: 22.99, 3: 81.32},
    "optdicts": {1: 0.08, 2: 22.98, 3: 17.66},
    "zippy": {1: 0.04, 2: 16.32, 3: 12.40},
    "reorder": {1: 0.03, 2: 12.13, 3: 5.63},
}


def _columnio_memory(baseline_files, query_id):
    from repro.sql.parser import parse_query

    backend = baseline_files["column-io"]
    return backend.memory_bytes(parse_query(PAPER_QUERIES[query_id]))


def test_table4_summary(
    benchmark,
    baseline_files,
    basic_store,
    chunks_store,
    optcols_store,
    optdicts_store,
    reorder_store,
):
    sizes: dict[tuple[str, int], int] = {}
    for query_id in (1, 2, 3):
        sizes[("dremel", query_id)] = _columnio_memory(baseline_files, query_id)
    stage_stores = {
        "basic": basic_store,
        "chunks": chunks_store,
        "optcols": optcols_store,
        "optdicts": optdicts_store,
    }
    for name, store in stage_stores.items():
        for query_id in (1, 2, 3):
            store.execute(PAPER_QUERIES[query_id])
            sizes[(name, query_id)] = uncompressed_field_bytes(
                store, query_fields(store, query_id)
            )
    for query_id in (1, 2, 3):
        optdicts_store.execute(PAPER_QUERIES[query_id])
        reorder_store.execute(PAPER_QUERIES[query_id])
        sizes[("zippy", query_id)] = compressed_field_bytes(
            optdicts_store, query_fields(optdicts_store, query_id)
        )
        sizes[("reorder", query_id)] = compressed_field_bytes(
            reorder_store, query_fields(reorder_store, query_id)
        )

    benchmark(lambda: reorder_store.execute(PAPER_QUERIES[1]))

    stages = ["dremel", "basic", "chunks", "optcols", "optdicts", "zippy", "reorder"]
    lines = [
        f"Table 4 — step-wise optimization summary ({reorder_store.n_rows} rows)",
        "",
        f"{'stage':<9} {'paper Q1':>9} {'Q1':>12} {'paper Q2':>9} {'Q2':>12} "
        f"{'paper Q3':>9} {'Q3':>12}",
    ]
    for name in stages:
        lines.append(
            f"{name:<9} "
            f"{_PAPER[name][1]:>9.2f} {fmt_bytes(sizes[(name, 1)]):>12} "
            f"{_PAPER[name][2]:>9.2f} {fmt_bytes(sizes[(name, 2)]):>12} "
            f"{_PAPER[name][3]:>9.2f} {fmt_bytes(sizes[(name, 3)]):>12}"
        )
    ratio = sizes[("basic", 3)] / sizes[("reorder", 3)]
    lines += [
        "",
        f"end-to-end Q3 reduction Basic -> Reorder: {ratio:.1f}x "
        "(paper: 16.2x; 'up to 50x' vs raw formats)",
    ]
    emit_report("table4_summary", lines)

    # Ladder is non-increasing per query after the known Chunks bump.
    ladder = ["chunks", "optcols", "optdicts", "zippy", "reorder"]
    for query_id in (1, 2, 3):
        for earlier, later in zip(ladder, ladder[1:]):
            assert sizes[(later, query_id)] <= sizes[(earlier, query_id)] * 1.05, (
                f"{later} should not exceed {earlier} on Q{query_id}"
            )
    assert ratio > 4, f"Q3 end-to-end reduction only {ratio:.1f}x"
    # Final footprint beats the Dremel stand-in on every query.
    for query_id in (1, 2, 3):
        assert sizes[("reorder", query_id)] < sizes[("dremel", query_id)]
