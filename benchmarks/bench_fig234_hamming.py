"""Figures 2-4: row reordering as a travelling salesperson problem.

The paper illustrates (Fig. 2) that reordering rows improves RLE
compression, derives (Fig. 3) that the simplified-RLE size of bit
columns equals one counter per column plus the Hamming distance between
consecutive rows, and recasts (Fig. 4) optimal reordering as shortest
Hamming path (TSP).

This bench regenerates those results quantitatively: on random and
structured bit matrices it verifies the identity, then compares the
identity-order path against the lexicographic sort and the
nearest-neighbour TSP heuristic of Johnson et al.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import emit_report
from repro.partition.hamming import hamming_path_length, rle_counter_total
from repro.partition.reorder import nearest_neighbor_order


def _lexicographic(matrix: np.ndarray) -> np.ndarray:
    return np.lexsort(tuple(reversed([matrix[:, i] for i in range(matrix.shape[1])])))


def test_fig234_reordering_and_identity(benchmark):
    rng = np.random.default_rng(2012)
    scenarios = {
        "random p=0.5": (rng.random((600, 16)) < 0.5).astype(np.uint8),
        "sparse p=0.1": (rng.random((600, 16)) < 0.1).astype(np.uint8),
        "clustered": np.repeat(
            (rng.random((60, 16)) < 0.4).astype(np.uint8), 10, axis=0
        )[rng.permutation(600)],
    }

    lines = [
        "Figures 2-4 — simplified-RLE counters (= d + Hamming path length)",
        "",
        f"{'matrix':<14} {'identity':>9} {'lexsort':>9} {'nearest-nb':>11} "
        f"{'best gain':>9}",
    ]
    results = {}
    for name, matrix in scenarios.items():
        d = matrix.shape[1]
        identity = rle_counter_total(matrix)
        # Figure 3's identity must hold for every ordering we try.
        assert identity == d + hamming_path_length(matrix)
        lex = _lexicographic(matrix)
        nn = nearest_neighbor_order(matrix, block_rows=None)
        lex_total = rle_counter_total(matrix, lex)
        nn_total = rle_counter_total(matrix, nn)
        assert lex_total == d + hamming_path_length(matrix, lex)
        assert nn_total == d + hamming_path_length(matrix, nn)
        best = min(lex_total, nn_total)
        results[name] = (identity, lex_total, nn_total)
        lines.append(
            f"{name:<14} {identity:>9} {lex_total:>9} {nn_total:>11} "
            f"{identity / best:>8.2f}x"
        )
    emit_report("fig234_hamming", lines)

    # Reordering must help on all scenarios (Figure 2's point) and the
    # clustered matrix must gain the most (its duplicate rows collapse).
    for name, (identity, lex_total, nn_total) in results.items():
        assert min(lex_total, nn_total) < identity, name
    gains = {
        name: identity / min(lex_total, nn_total)
        for name, (identity, lex_total, nn_total) in results.items()
    }
    assert gains["clustered"] > gains["random p=0.5"]

    benchmark(
        lambda: nearest_neighbor_order(scenarios["random p=0.5"], block_rows=128)
    )


def test_blocked_heuristic_close_to_global(benchmark):
    """Johnson et al. split into ranges for tractability; the blocked
    variant must stay within a modest factor of the global one."""
    rng = np.random.default_rng(7)
    matrix = (rng.random((400, 12)) < 0.3).astype(np.uint8)
    global_order = nearest_neighbor_order(matrix, block_rows=None)
    blocked_order = benchmark(
        lambda: nearest_neighbor_order(matrix, block_rows=100)
    )
    global_len = hamming_path_length(matrix, global_order)
    blocked_len = hamming_path_length(matrix, blocked_order)
    # Blocking trades path quality for tractability (Johnson et al.);
    # it stays within ~2x of the global heuristic here and must still
    # clearly beat the identity order.
    assert blocked_len <= global_len * 2.0
    assert blocked_len < hamming_path_length(matrix) * 0.8
