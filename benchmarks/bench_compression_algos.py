"""Section 5 "Other Compression Algorithms".

Paper: besides Zippy, the authors "tested 4 other commodity compression
algorithms, including variants provided by the standard libraries ZLIB
and LZO. For ZLIB we tested settings with and without additional
Huffman coding. The latter gave a perhaps surprising gain of additional
20-30% in experiments, but came with the expected cost of being up to
an order of magnitude slower. [...] we chose a variant of LZO for
production, since it gave an about 10% better compression ratio [than
Zippy] and was up to twice as fast when decompressing."

Shape asserted on the store's own chunk payloads:

- adding Huffman on top of the LZ stage improves the ratio further but
  costs several times the compression time;
- the LZO-like codec compresses at least as well as Zippy.
"""

from __future__ import annotations

import time

from benchmarks.helpers import emit_report, fmt_bytes
from repro.compress.registry import get_codec


def _payloads(store) -> list[bytes]:
    """One buffer per field: all chunk payloads plus the dictionary.

    Codecs are compared on field-sized buffers (as in the paper's
    column compression), not per tiny chunk — per-chunk framing would
    drown Huffman's fixed 256-byte code table.
    """
    payloads = []
    for name in ("country", "table_name", "latency", "user_name"):
        field = store.field(name)
        buffer = b"".join(chunk.to_bytes() for chunk in field.chunks)
        payloads.append(buffer + field.dictionary.to_bytes())
    return payloads


def test_codec_comparison(benchmark, chunks_store):
    payloads = _payloads(chunks_store)
    raw = sum(len(p) for p in payloads)

    measured = {}
    for codec_name in ("zippy", "lzo", "zippy+huffman"):
        codec = get_codec(codec_name)
        started = time.perf_counter()
        blobs = [codec.compress(p) for p in payloads]
        compress_seconds = time.perf_counter() - started
        started = time.perf_counter()
        for blob, original in zip(blobs, payloads):
            assert codec.decompress(blob) == original
        decompress_seconds = time.perf_counter() - started
        measured[codec_name] = (
            sum(len(b) for b in blobs),
            compress_seconds,
            decompress_seconds,
        )

    zippy_codec = get_codec("zippy")
    benchmark(lambda: zippy_codec.compress(payloads[0]))

    lines = [
        "Section 5 codecs — compressing the store's chunk payloads "
        f"({len(payloads)} payloads, {fmt_bytes(raw).strip()} raw)",
        "",
        f"{'codec':<15} {'size':>12} {'ratio':>7} {'comp s':>8} {'decomp s':>9}",
    ]
    for codec_name, (size, cs, ds) in measured.items():
        lines.append(
            f"{codec_name:<15} {fmt_bytes(size):>12} {raw / size:>6.2f}x "
            f"{cs:>8.3f} {ds:>9.3f}"
        )
    emit_report("compression_algos", lines)

    zippy_size, zippy_cs, __ = measured["zippy"]
    lzo_size, __, __ = measured["lzo"]
    huff_size, huff_cs, __ = measured["zippy+huffman"]
    # Huffman on top gains extra ratio but is several times slower.
    assert huff_size < zippy_size
    assert huff_cs > zippy_cs * 2
    # The LZO-like variant compresses at least as well as zippy.
    assert lzo_size <= zippy_size * 1.01
