"""Section 5 "Count Distinct": KMV approximation accuracy and overhead.

Paper: exact count distinct "can be a very costly operation for fields
with large numbers of distinct values, both with respect to memory and
runtime"; the KMV sketch with m "in the order of a couple of thousand"
approximates it "with comparatively small overhead".

This bench counts distinct table names per country exactly and with
several sketch sizes, reporting error and runtime. Shape: error falls
as m grows (~1/sqrt(m)), and the m=1024 sketch stays within a few
percent while touching only m hashes per group.
"""

from __future__ import annotations

import time

from benchmarks.helpers import emit_report
from repro.testing import values_equal

_EXACT = (
    "SELECT country, COUNT(DISTINCT table_name) as cd FROM data "
    "GROUP BY country ORDER BY country ASC LIMIT 30"
)


def _approx_query(m: int) -> str:
    return (
        f"SELECT country, APPROX_COUNT_DISTINCT(table_name, {m}) as cd "
        "FROM data GROUP BY country ORDER BY country ASC LIMIT 30"
    )


def test_kmv_accuracy_and_overhead(benchmark, reorder_store):
    store = reorder_store
    started = time.perf_counter()
    exact = dict(store.execute(_EXACT).rows())
    exact_seconds = time.perf_counter() - started

    rows_by_m = {}
    seconds_by_m = {}
    for m in (64, 256, 1024, 4096):
        started = time.perf_counter()
        rows_by_m[m] = dict(store.execute(_approx_query(m)).rows())
        seconds_by_m[m] = time.perf_counter() - started

    benchmark(lambda: store.execute(_approx_query(1024)))

    lines = [
        "Section 5 count distinct — KMV vs exact "
        "(distinct table_name per country)",
        "",
        f"exact: {1000 * exact_seconds:.1f} ms",
        f"{'m':>6} {'mean rel err':>12} {'max rel err':>12} {'ms':>9}",
    ]
    errors = {}
    for m, approx in rows_by_m.items():
        rel = [
            abs(approx[c] - exact[c]) / exact[c]
            for c in exact
            if exact[c] > 0
        ]
        errors[m] = sum(rel) / len(rel)
        lines.append(
            f"{m:>6} {errors[m]:>12.3%} {max(rel):>12.3%} "
            f"{1000 * seconds_by_m[m]:>9.1f}"
        )
    emit_report("count_distinct", lines)

    # Error shrinks with m (allowing noise between adjacent sizes).
    assert errors[4096] <= errors[64]
    assert errors[1024] < 0.10, f"m=1024 error {errors[1024]:.1%}"
    # Groups smaller than m are exact by construction.
    smallest = min(exact, key=exact.get)
    if exact[smallest] < 64:
        assert values_equal(rows_by_m[64][smallest], exact[smallest])
