"""Section 3 "Reordering Rows": compression gains from the lexicographic sort.

Paper: "when considering the encoding of the elements and
chunk-dictionaries only (without the global-dictionaries), this gives
us an improvement of factors 1.2, 1.3, and 2.8 for Queries 1, 2, and 3,
respectively. This is compared to compression without reordering."

Shape: reordering improves compressed element sizes for every query,
with the many-distinct table_name (Q3) gaining the most.
"""

from __future__ import annotations

from benchmarks.helpers import (
    PAPER_QUERIES,
    compressed_field_bytes,
    emit_report,
    fmt_bytes,
    query_fields,
)

_PAPER_FACTORS = {1: 1.2, 2: 1.3, 3: 2.8}


def test_reorder_compression_gains(benchmark, optdicts_store, reorder_store):
    before = {}
    after = {}
    for query_id in (1, 2, 3):
        optdicts_store.execute(PAPER_QUERIES[query_id])
        reorder_store.execute(PAPER_QUERIES[query_id])
        fields_plain = query_fields(optdicts_store, query_id)
        fields_sorted = query_fields(reorder_store, query_id)
        before[query_id] = compressed_field_bytes(
            optdicts_store, fields_plain, include_global_dict=False
        )
        after[query_id] = compressed_field_bytes(
            reorder_store, fields_sorted, include_global_dict=False
        )

    benchmark(
        lambda: compressed_field_bytes(
            reorder_store, ["table_name"], include_global_dict=False
        )
    )

    lines = [
        "Section 3 reorder — compressed elements+chunk-dicts, "
        "unsorted vs lexicographically reordered rows",
        "",
        f"{'Q':>2} {'paper gain':>10} {'unsorted':>12} {'reordered':>12} {'gain':>7}",
    ]
    factors = {}
    for query_id in (1, 2, 3):
        factors[query_id] = before[query_id] / after[query_id]
        lines.append(
            f"{query_id:>2} {_PAPER_FACTORS[query_id]:>9.1f}x "
            f"{fmt_bytes(before[query_id]):>12} {fmt_bytes(after[query_id]):>12} "
            f"{factors[query_id]:>6.2f}x"
        )
    emit_report("reorder", lines)

    # Reordering never hurts and visibly helps the table_name query.
    for query_id in (1, 2, 3):
        assert factors[query_id] > 0.95
    assert factors[3] > 1.25, "Q3 should gain the most from reordering"
    assert factors[3] >= factors[1]
    assert factors[3] >= factors[2]
