"""Encoding advisor vs static codec (PR 9).

Not a paper table — a point on the repo's own perf trajectory:
`BENCH_PR9.json` records, per field, the size and decode-throughput of
the advisor's per-column codec choice against the historical
one-codec-for-everything baseline, plus the geometric mean of the
size x decode-throughput product the advisor's cost model optimizes.

What is asserted unconditionally (correctness, not speed):

- every field section round-trips byte-exactly under both the static
  and the advisor-chosen codec;
- the two stores' field sections are byte-identical (the codec choice
  must not change the encoded data, only how it is wrapped at rest);
- the advisor store passes fsck clean (including the FSCK012
  codec-choice checks) and survives a save/load cycle with its codec
  choices and section bytes intact.

The ≥1.15x size x decode geomean criterion is gated on scale like the
other trajectory benches: on toy inputs constant factors dominate the
throughput measurements; the measured numbers are recorded in the JSON
either way.
"""

from __future__ import annotations

import json
import os

from benchmarks.helpers import RESULTS_DIR, emit_report
from repro.workload.benchadvisor import (
    AdvisorBenchConfig,
    render_advisor_report,
    run_advisor_bench,
)

#: The acceptance run uses 200k rows; scale down only explicitly.
ADVISOR_ROWS = int(os.environ.get("REPRO_BENCH_ADVISOR_ROWS", "200000"))


def test_encoding_advisor_trajectory():
    config = AdvisorBenchConfig(rows=ADVISOR_ROWS, repeats=3)
    report = run_advisor_bench(config)

    emit_report("encoding_advisor", render_advisor_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR9.json"
    out_path.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    # Correctness gates — these hold on any machine at any scale.
    assert report["fields"], "no non-virtual fields measured"
    for name, entry in report["fields"].items():
        assert entry["sections_identical"], name
        assert entry["static"]["encoded_bytes"] > 0, name
        assert entry["advisor"]["encoded_bytes"] > 0, name
        assert entry["choice"], name  # the advisor recorded a choice
    assert report["fsck_clean"], report["fsck_findings"]
    save_load = report["save_load"]
    assert save_load["rows_match"]
    assert save_load["codecs_match"]
    assert save_load["sections_match"]

    # Perf gate — needs enough data for throughput to be meaningful.
    if config.rows >= 200_000:
        assert report["size_decode_geomean"] >= 1.15, (
            report["size_decode_geomean"]
        )
