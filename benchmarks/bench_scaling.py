"""Scaling behaviour: import and query cost vs dataset size.

Not a paper table, but the claim behind the title — interactivity at
"a trillion cells" — rests on both phases scaling linearly: import is
one partitioning pass plus per-column encoding, and full-scan queries
are one vectorized pass over the touched columns. This bench imports
the workload at three sizes and checks that neither phase degrades
super-linearly, reporting the cells-per-second scan rate the substrate
reaches (the paper's production system processes ~20-25 billion
cells/second/query across >1000 machines).
"""

from __future__ import annotations

import time

from benchmarks.helpers import PARTITION_FIELDS, emit_report
from repro.core.datastore import DataStore, DataStoreOptions
from repro.workload.generator import LogsConfig, generate_query_logs
from repro.workload.queries import QUERY_1

_SCALES = (15_000, 30_000, 60_000)


def test_linear_scaling(benchmark):
    measurements = []
    for n_rows in _SCALES:
        table = generate_query_logs(
            LogsConfig(
                n_rows=n_rows,
                n_days=max(14, n_rows // 4000),
                n_teams=max(8, n_rows // 3000),
                datasets_per_team=8,
                seed=2012,
            )
        )
        started = time.perf_counter()
        store = DataStore.from_table(
            table,
            DataStoreOptions(
                partition_fields=PARTITION_FIELDS,
                max_chunk_rows=max(256, n_rows // 100),
                reorder_rows=True,
                cache_chunk_results=False,
            ),
        )
        import_seconds = time.perf_counter() - started
        store.execute(QUERY_1)  # warm
        started = time.perf_counter()
        repeats = 20
        for __ in range(repeats):
            store.execute(QUERY_1)
        query_seconds = (time.perf_counter() - started) / repeats
        measurements.append((n_rows, import_seconds, query_seconds, store))

    last_store = measurements[-1][3]
    benchmark(lambda: last_store.execute(QUERY_1))

    lines = [
        "Scaling — import and Query 1 latency vs rows",
        "",
        f"{'rows':>8} {'import s':>9} {'rows/s':>10} {'Q1 ms':>8} "
        f"{'cells/s (M)':>12}",
    ]
    for n_rows, import_seconds, query_seconds, __ in measurements:
        lines.append(
            f"{n_rows:>8} {import_seconds:>9.2f} "
            f"{n_rows / import_seconds:>10,.0f} {1000 * query_seconds:>8.2f} "
            f"{n_rows / query_seconds / 1e6:>12.1f}"
        )
    emit_report("scaling", lines)

    # Import throughput must not degrade more than 2x across a 4x size
    # increase (i.e. stays roughly linear).
    rates = [n / s for n, s, __, ___ in measurements]
    assert rates[-1] > rates[0] / 2.0
    # Query latency grows sub-linearly in rows here because the scan is
    # vectorized; it must certainly not grow faster than rows.
    latency_growth = measurements[-1][2] / measurements[0][2]
    size_growth = _SCALES[-1] / _SCALES[0]
    assert latency_growth < size_growth * 1.5
