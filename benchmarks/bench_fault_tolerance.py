"""Fault-tolerant distributed execution (PR 3).

Not a paper table — the next point of the repo's own trajectory:
`BENCH_PR3.json` records availability, row coverage, latency and the
retry/failover/timeout/quarantine totals of the simulated cluster under
a seeded fault plan, swept over per-machine crash rates
{0, 0.05, 0.2, 0.5}, so later PRs can diff fault-handling behaviour.

What is asserted unconditionally (correctness, not speed):

- with no injected crashes every query is answered completely with
  full row coverage;
- every result the system reports as *complete* matches the fault-free
  reference row-for-row, at every crash rate — fault handling may cost
  latency and coverage, never silent wrong answers;
- at the heaviest crash rate the cluster degrades rather than fails:
  availability drops below 1 but every served query still reports an
  exact row-coverage fraction.

Everything here is simulated and seeded, so the numbers are identical
on any machine — no cores/timing gates needed.
"""

from __future__ import annotations

import json

from benchmarks.helpers import BENCH_ROWS, RESULTS_DIR, emit_report
from repro.workload.chaosbench import (
    ChaosBenchConfig,
    render_chaos_report,
    run_chaos_bench,
)

CRASH_RATES = (0.0, 0.05, 0.2, 0.5)


def test_fault_tolerance_trajectory():
    config = ChaosBenchConfig(
        rows=min(BENCH_ROWS, 24_000),
        crash_rates=CRASH_RATES,
        queries_per_rate=12,
    )
    report = run_chaos_bench(config)
    report["pr"] = 3

    emit_report("fault_tolerance", render_chaos_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR3.json"
    out_path.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    sweep = report["sweep"]
    assert [point["crash_rate"] for point in sweep] == list(CRASH_RATES)

    # No crashes: fully available, fully covered.
    assert sweep[0]["availability"] == 1.0
    assert sweep[0]["mean_row_coverage"] == 1.0

    # Complete answers are never silently wrong, at any fault rate.
    assert all(p["complete_results_match_reference"] for p in sweep)

    # Heavy crashes degrade gracefully: availability drops, but
    # coverage accounting stays exact (within [0, 1], never negative).
    assert sweep[-1]["availability"] < 1.0
    assert sweep[-1]["mean_row_coverage"] < 1.0
    for point in sweep:
        assert 0.0 <= point["min_row_coverage"] <= 1.0
        assert point["availability"] <= sweep[0]["availability"]

    # The fault machinery actually engaged under crashes.
    assert sum(p["failovers"] for p in sweep[1:]) > 0
    assert sum(p["fault_events"] for p in sweep[1:]) > 0
