"""Shared infrastructure for the benchmark suite.

Every bench reproduces one table or figure from the paper. Because the
substrate is pure Python on synthetic data (not Google's C++ on
production logs), absolute numbers differ; each bench therefore prints
the paper's reported values next to the measured ones and asserts the
*shape*: orderings, approximate ratios, crossovers.

Scale is controlled with the ``REPRO_BENCH_ROWS`` environment variable
(default 60'000 rows; the paper used 5M). The partition threshold
scales proportionally (the paper's 50'000 of 5M = 1%).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.compress.registry import get_codec
from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import Table
from repro.workload.generator import LogsConfig, generate_query_logs
from repro.workload.queries import QUERY_1, QUERY_2, QUERY_3

BENCH_ROWS = int(os.environ.get("REPRO_BENCH_ROWS", "60000"))
#: paper: 50k chunks of 5M rows = 1% of the table
CHUNK_ROWS = max(256, BENCH_ROWS // 100)
PARTITION_FIELDS = ("country", "table_name")

RESULTS_DIR = Path(__file__).parent / "results"

_CACHED: dict = {}


def bench_table() -> Table:
    """The shared benchmark dataset (cached per process).

    Cardinality parameters scale with the row count so that the
    rows-per-distinct-table-name ratio matches the paper's (~15 rows
    per distinct name: 5M rows over several 100K names). Without this,
    sorted runs are too short for the reordering experiment to show.
    """
    if "table" not in _CACHED:
        config = LogsConfig(
            n_rows=BENCH_ROWS,
            n_days=min(92, max(14, BENCH_ROWS // 4000)),
            n_teams=min(40, max(8, BENCH_ROWS // 3000)),
            datasets_per_team=8,
            seed=2012,
        )
        _CACHED["table"] = generate_query_logs(config)
    return _CACHED["table"]


def store_variant(name: str) -> DataStore:
    """Build (and cache) one of the paper's optimization stages.

    ======== ========= ======== ========= ========
    name     partition opt cols opt dicts reorder
    ======== ========= ======== ========= ========
    basic    no        no       no        no
    chunks   yes       no       no        no
    optcols  yes       yes      no        no
    optdicts yes       yes      yes       no
    reorder  yes       yes      yes       yes
    ======== ========= ======== ========= ========
    """
    configs = {
        "basic": DataStoreOptions(
            optimized_columns=False, optimized_dicts=False
        ),
        "chunks": DataStoreOptions(
            partition_fields=PARTITION_FIELDS,
            max_chunk_rows=CHUNK_ROWS,
            optimized_columns=False,
            optimized_dicts=False,
        ),
        "optcols": DataStoreOptions(
            partition_fields=PARTITION_FIELDS,
            max_chunk_rows=CHUNK_ROWS,
            optimized_columns=True,
            optimized_dicts=False,
        ),
        "optdicts": DataStoreOptions(
            partition_fields=PARTITION_FIELDS,
            max_chunk_rows=CHUNK_ROWS,
            optimized_columns=True,
            optimized_dicts=True,
        ),
        "reorder": DataStoreOptions(
            partition_fields=PARTITION_FIELDS,
            max_chunk_rows=CHUNK_ROWS,
            optimized_columns=True,
            optimized_dicts=True,
            reorder_rows=True,
        ),
    }
    key = f"store:{name}"
    if key not in _CACHED:
        _CACHED[key] = DataStore.from_table(bench_table(), configs[name])
    return _CACHED[key]


def query_fields(store: DataStore, query_id: int) -> list[str]:
    """The fields whose memory each paper query is charged for.

    Q1: country; Q2: the materialized date(timestamp) virtual field and
    latency (the paper assumes the expression "has happened before
    computing Query 2", footnote 4); Q3: table_name.
    """
    if query_id == 1:
        return ["country"]
    if query_id == 2:
        from repro.sql.parser import parse_query

        expr = parse_query("SELECT date(timestamp) FROM data").select[0].expr
        virtual = store.ensure_field(expr)
        return [virtual, "latency"]
    if query_id == 3:
        return ["table_name"]
    raise ValueError(query_id)


PAPER_QUERIES = {1: QUERY_1, 2: QUERY_2, 3: QUERY_3}


def compressed_field_bytes(
    store: DataStore,
    fields: list[str],
    codec: str = "zippy",
    include_global_dict: bool = True,
) -> int:
    """Compressed footprint: per-chunk payloads + global dictionaries.

    Mirrors the paper's "Applying Zippy to the individual encodings":
    each chunk's (chunk-dictionary + elements) payload is compressed
    separately, as is each global dictionary.
    """
    compressor = get_codec(codec)
    total = 0
    for name in fields:
        field = store.field(name)
        for chunk in field.chunks:
            total += len(compressor.compress(chunk.to_bytes()))
        if include_global_dict:
            total += len(compressor.compress(field.dictionary.to_bytes()))
    return total


def uncompressed_field_bytes(
    store: DataStore, fields: list[str], include_global_dict: bool = True
) -> int:
    total = 0
    for name in fields:
        field = store.field(name)
        total += field.chunk_dicts_size_bytes() + field.elements_size_bytes()
        if include_global_dict:
            total += field.dictionary_size_bytes()
    return total


def emit_report(name: str, lines: list[str]) -> None:
    """Print a bench report and persist it under benchmarks/results/."""
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")


def fmt_bytes(n: float) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):8.2f} MB"
    return f"{n / 1024:8.2f} KB"


def mean_ms(benchmark) -> float:
    """Mean time of a finished pytest-benchmark run, in milliseconds."""
    return benchmark.stats.stats.mean * 1000.0
