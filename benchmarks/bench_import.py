"""Vectorized import & encoding pipeline (PR 4).

Not a paper table — the third point of the repo's own perf trajectory:
`BENCH_PR4.json` records per-phase import timings (factorize, reorder,
partition, dictionary build, chunk encode) plus a scalar-vs-vectorized
kernel comparison, so later PRs can diff ingestion against it.

What is asserted unconditionally (correctness, not speed):

- the vectorized pipeline serializes byte-identically to the frozen
  scalar reference implementation (build_reference_store);
- fsck finds nothing in the imported store;
- ImportStats is populated and its phases account for the total.

The ≥3x factorize+dictionary speedup criterion is about kernel quality,
not parallelism, but it still needs enough rows for the bulk kernels
to amortize their setup: on toy inputs the constant factors dominate.
The speedup assertion is therefore gated on the row count; the measured
numbers are recorded in the JSON either way.
"""

from __future__ import annotations

import json
import os

from benchmarks.helpers import RESULTS_DIR, emit_report
from repro.workload.benchimport import (
    ImportBenchConfig,
    render_import_report,
    run_import_bench,
)

#: The acceptance run uses 200k rows; scale down only explicitly.
IMPORT_ROWS = int(os.environ.get("REPRO_BENCH_IMPORT_ROWS", "200000"))


def test_import_trajectory():
    config = ImportBenchConfig(rows=IMPORT_ROWS, repeats=3)
    report = run_import_bench(config)
    report["pr"] = 4

    emit_report("import_pipeline", render_import_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR4.json"
    out_path.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    # Correctness gates — these hold on any machine at any scale.
    assert report["serialization_identical"]
    assert report["fsck_ok"]
    stats = report["import_stats"]
    assert stats["rows"] == config.rows
    assert stats["chunks"] >= 1
    assert stats["total_seconds"] > 0
    assert sum(stats["phase_seconds"].values()) <= stats["total_seconds"]

    # Speedup gate — needs enough rows for bulk kernels to amortize.
    if config.rows >= 100_000:
        assert report["factorize_dictionary_speedup"] >= 3.0
