"""Process-pool scan over the shared-memory chunk arena (PR 7).

Second point on the repo's own perf trajectory: `BENCH_PR7.json`
records the serial / thread / process strategy sweep on the shared log
workload — wall-clock, rows/s and the per-phase ScanStats split per
strategy — so the arena-build and pickling overheads of the process
path are visible next to its GIL-free scan.

What is asserted unconditionally (correctness, not speed):

- every strategy's result rows are bit-identical to serial;
- no shared-memory segments are leaked once the sweep's executors are
  closed.

The ≥1.5x speedup criterion needs real cores: a process pool on a
single-CPU box pays fork + pickle overhead for no parallelism. As in
PR 2 the assertion is gated on ``os.cpu_count() >= 4``; the measured
numbers are recorded in the JSON either way.
"""

from __future__ import annotations

import json
import os

from benchmarks.helpers import BENCH_ROWS, RESULTS_DIR, emit_report
from repro.storage.arena import live_segment_names
from repro.workload.benchscan import (
    ScanBenchConfig,
    render_scan_report,
    run_scan_bench,
)

EXECUTORS = ("serial", "thread", "process")


def test_process_scan_trajectory():
    config = ScanBenchConfig(
        rows=BENCH_ROWS,
        workers=(1, 2, 4),
        policies=("lru",),
        executors=EXECUTORS,
        repeats=3,
    )
    report = run_scan_bench(config)
    report["pr"] = 7

    emit_report("process_scan", render_scan_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR7.json"
    out_path.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    # Correctness gates — these hold on any machine.
    assert report["executor_results_identical"]
    sweep = {entry["executor"]: entry for entry in report["executor_sweep"]}
    assert set(sweep) == set(EXECUTORS)
    for entry in sweep.values():
        assert entry["seconds"] > 0
        assert entry["rows_per_second"] > 0
        assert entry["phase_seconds"]["scan"] >= 0
    # Arena lifecycle: the sweep closed every executor it opened.
    assert live_segment_names() == []

    # Speedup gate — only meaningful with real cores to fan out over.
    if (os.cpu_count() or 1) >= 4:
        assert sweep["process"]["speedup_vs_serial"] >= 1.5
