"""Section 6 production statistics: skipped / cached / scanned rows.

Paper (three months of production traffic, >1000 machines):

    "On average 92.41% of underlying records were skipped and 5.02%
    served from cached results, leaving only 2.66% to be scanned."

This bench replays a synthetic drill-down session mix (conjunctions of
IN restrictions from the Web UI, ~20 queries per click, with occasional
repeated charts that hit the chunk-result cache) against a partitioned
store and reports the same three fractions. Shape: the large majority
of rows is skipped, a small share is served from cache, and only a few
percent are scanned.
"""

from __future__ import annotations

from benchmarks.helpers import emit_report
from repro.workload.queries import DrillDownConfig, generate_drilldown_sessions


def test_production_skip_fractions(benchmark, table, reorder_store):
    store = reorder_store
    clicks = generate_drilldown_sessions(
        table,
        DrillDownConfig(
            n_sessions=12, clicks_per_session=4, queries_per_click=8, seed=6
        ),
    )
    # Warm pass mimicking long-running production servers: the first
    # repetition of each click populates chunk-result caches the same
    # way the paper's three-month window does.
    skipped = cached = scanned = total = 0
    latencies: list[float] = []
    for batch in clicks:
        for repeat in range(2):  # users re-render charts
            for sql in batch:
                result = store.execute(sql)
                stats = result.stats
                skipped += stats.rows_skipped
                cached += stats.rows_cached
                scanned += stats.rows_scanned
                total += stats.rows_total
                latencies.append(result.elapsed_seconds)

    benchmark(lambda: store.execute(clicks[0][0]))

    skip_frac = skipped / total
    cache_frac = cached / total
    scan_frac = scanned / total
    lines = [
        "Section 6 — fraction of rows skipped / cached / scanned over a "
        f"drill-down session mix ({len(clicks)} clicks x "
        f"{len(clicks[0])} queries x 2 repeats, {store.n_rows} rows, "
        f"{store.n_chunks} chunks)",
        "",
        f"{'':<10} {'paper':>8} {'measured':>9}",
        f"{'skipped':<10} {'92.41%':>8} {skip_frac:>8.2%}",
        f"{'cached':<10} {'5.02%':>8} {cache_frac:>8.2%}",
        f"{'scanned':<10} {'2.66%':>8} {scan_frac:>8.2%}",
        "",
        f"avg query latency: {1000 * sum(latencies) / len(latencies):.1f} ms",
    ]
    emit_report("production_skipping", lines)

    assert abs(skip_frac + cache_frac + scan_frac - 1.0) < 1e-9
    assert skip_frac > 0.70, f"only {skip_frac:.1%} skipped"
    assert cache_frac > 0.01, "cache should serve a visible share"
    assert scan_frac < 0.25, f"{scan_frac:.1%} scanned is too much"
    # Ordering of the three fractions matches production.
    assert skip_frac > cache_frac > 0
    assert skip_frac > scan_frac
