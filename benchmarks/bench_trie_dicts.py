"""Section 3 "Optimize Global-Dictionaries": the nibble trie.

Paper: "this trie data-structure drastically reduces the size of the
global-dictionary for table_name from 67.03 MB down to 3.37 MB [~20x].
The overall memory usage of Query 3 goes down from 81.32 MB to
17.66 MB [4.6x]."

Shape: the trie shrinks the table_name dictionary by a large factor
(shared prefixes stored once) and pulls Query 3's overall footprint
down accordingly, while lookups in both directions stay correct.
"""

from __future__ import annotations

from benchmarks.helpers import (
    emit_report,
    fmt_bytes,
    uncompressed_field_bytes,
)


def test_trie_dictionary_size(benchmark, optcols_store, optdicts_store):
    plain_dict = optcols_store.field("table_name").dictionary
    trie_dict = optdicts_store.field("table_name").dictionary
    assert plain_dict.kind == "string"
    assert trie_dict.kind == "trie"

    plain_size = plain_dict.size_bytes()
    trie_size = trie_dict.size_bytes()
    overall_plain = uncompressed_field_bytes(optcols_store, ["table_name"])
    overall_trie = uncompressed_field_bytes(optdicts_store, ["table_name"])

    # Benchmark the trie's two lookup directions over the whole dict.
    values = trie_dict.values()
    probes = values[:: max(1, len(values) // 200)]

    def lookup_both_ways():
        for value in probes:
            gid = trie_dict.global_id(value)
            assert trie_dict.value(gid) == value

    benchmark(lookup_both_ways)

    ratio = plain_size / trie_size
    lines = [
        "Section 3 trie — table_name global dictionary "
        f"({len(trie_dict)} distinct values)",
        "",
        f"paper: dictionary 67.03 MB -> 3.37 MB (19.9x); "
        "Q3 overall 81.32 -> 17.66 MB (4.6x)",
        f"measured: dictionary {fmt_bytes(plain_size)} -> "
        f"{fmt_bytes(trie_size)} ({ratio:.1f}x)",
        f"measured: Q3 overall {fmt_bytes(overall_plain)} -> "
        f"{fmt_bytes(overall_trie)} "
        f"({overall_plain / overall_trie:.1f}x)",
    ]
    emit_report("trie_dicts", lines)

    # The trie must shrink the dictionary substantially (paper: 20x;
    # our synthetic names are shorter, so require >= 2.5x).
    assert ratio > 2.5, f"trie only saved {ratio:.2f}x"
    assert overall_trie < overall_plain
