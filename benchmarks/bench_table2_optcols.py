"""Table 2: optimized element encodings (OptCols).

Paper (MB):

    Elements only              Overall
    Query      1      2      3     1      2      3
    Basic  20.00  40.73  24.21 20.00  41.45  91.23
    Chunks 20.07  47.26  24.29 20.07  47.99  91.32
    OptCols 0.08  22.26  14.29  0.08  22.99  81.32

Shape: the Query 1 collapse is the headline — country is first in the
partition order, so chunks hold 1-2 distinct countries and the
constant/bitset encodings make its elements nearly free (250x in the
paper). Q2/Q3 shrink but remain dominated by dictionaries.
"""

from __future__ import annotations

from benchmarks.helpers import (
    PAPER_QUERIES,
    emit_report,
    fmt_bytes,
    query_fields,
    uncompressed_field_bytes,
)

_PAPER_ELEMENTS = {
    "basic": {1: 20.00, 2: 40.73, 3: 24.21},
    "chunks": {1: 20.07, 2: 47.26, 3: 24.29},
    "optcols": {1: 0.08, 2: 22.26, 3: 14.29},
}
_PAPER_OVERALL = {
    "basic": {1: 20.00, 2: 41.45, 3: 91.23},
    "chunks": {1: 20.07, 2: 47.99, 3: 91.32},
    "optcols": {1: 0.08, 2: 22.99, 3: 81.32},
}


def test_optcols_memory_table(
    benchmark, basic_store, chunks_store, optcols_store
):
    stores = {
        "basic": basic_store,
        "chunks": chunks_store,
        "optcols": optcols_store,
    }
    elements = {}
    overall = {}
    for name, store in stores.items():
        for query_id in (1, 2, 3):
            store.execute(PAPER_QUERIES[query_id])
            fields = query_fields(store, query_id)
            elements[(name, query_id)] = uncompressed_field_bytes(
                store, fields, include_global_dict=False
            )
            overall[(name, query_id)] = uncompressed_field_bytes(store, fields)

    benchmark(lambda: optcols_store.execute(PAPER_QUERIES[1]))

    lines = [
        "Table 2 — optimized element encodings "
        f"({optcols_store.n_rows} rows)",
        "",
        f"{'variant':<8} {'Q':>2} {'paper elems':>11} {'elems':>12} "
        f"{'paper all':>10} {'overall':>12}",
    ]
    for name in ("basic", "chunks", "optcols"):
        for query_id in (1, 2, 3):
            lines.append(
                f"{name:<8} {query_id:>2} "
                f"{_PAPER_ELEMENTS[name][query_id]:>11.2f} "
                f"{fmt_bytes(elements[(name, query_id)]):>12} "
                f"{_PAPER_OVERALL[name][query_id]:>10.2f} "
                f"{fmt_bytes(overall[(name, query_id)]):>12}"
            )
    emit_report("table2_optcols", lines)

    # Headline: Q1 elements collapse dramatically (paper: 250x).
    q1_ratio = elements[("chunks", 1)] / max(elements[("optcols", 1)], 1)
    assert q1_ratio > 20, f"Q1 elements only shrank {q1_ratio:.1f}x"
    # Q2 and Q3 also shrink, by smaller factors.
    for query_id in (2, 3):
        assert (
            elements[("optcols", query_id)] < elements[("chunks", query_id)]
        )
    # Q3 overall is still dominated by the global dictionary: the
    # overall saving is much smaller than the elements saving.
    q3_overall_ratio = overall[("chunks", 3)] / overall[("optcols", 3)]
    q3_elements_ratio = elements[("chunks", 3)] / elements[("optcols", 3)]
    assert q3_overall_ratio < q3_elements_ratio
