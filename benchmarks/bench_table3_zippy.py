"""Table 3: applying Zippy to each encoding stage.

Paper (MB):

    Uncompressed                Compressed
    Query       1      2      3      1      2      3
    Basic   20.00  41.45  91.23   3.02  17.35  17.70
    Chunks  20.07  47.99  91.32   0.28  16.34  12.19
    OptCols  0.08  22.99  81.32   0.04  16.32  12.19
    OptDicts 0.08  22.98  17.66   0.04  16.32  12.40

Shape assertions:

- Zippy profits from partitioning (compressed Chunks << compressed
  Basic on Q1, 10x in the paper);
- the compression "wall": once partitioned, the further hand
  optimizations barely change the *compressed* sizes for Q2/Q3 even
  though uncompressed sizes drop a lot — "the final size almost seems
  like an invariant".
"""

from __future__ import annotations

from benchmarks.helpers import (
    PAPER_QUERIES,
    compressed_field_bytes,
    emit_report,
    fmt_bytes,
    query_fields,
    uncompressed_field_bytes,
)

_PAPER_UNCOMP = {
    "basic": {1: 20.00, 2: 41.45, 3: 91.23},
    "chunks": {1: 20.07, 2: 47.99, 3: 91.32},
    "optcols": {1: 0.08, 2: 22.99, 3: 81.32},
    "optdicts": {1: 0.08, 2: 22.98, 3: 17.66},
}
_PAPER_COMP = {
    "basic": {1: 3.02, 2: 17.35, 3: 17.70},
    "chunks": {1: 0.28, 2: 16.34, 3: 12.19},
    "optcols": {1: 0.04, 2: 16.32, 3: 12.19},
    "optdicts": {1: 0.04, 2: 16.32, 3: 12.40},
}


def test_zippy_on_each_stage(
    benchmark, basic_store, chunks_store, optcols_store, optdicts_store
):
    stores = {
        "basic": basic_store,
        "chunks": chunks_store,
        "optcols": optcols_store,
        "optdicts": optdicts_store,
    }
    uncompressed = {}
    compressed = {}
    for name, store in stores.items():
        for query_id in (1, 2, 3):
            store.execute(PAPER_QUERIES[query_id])
            fields = query_fields(store, query_id)
            uncompressed[(name, query_id)] = uncompressed_field_bytes(
                store, fields
            )
            compressed[(name, query_id)] = compressed_field_bytes(
                store, fields, codec="zippy"
            )

    # Time the compression of one representative field payload.
    benchmark(
        lambda: compressed_field_bytes(optdicts_store, ["country"], "zippy")
    )

    lines = [
        "Table 3 — Zippy applied to the individual encodings "
        f"({optdicts_store.n_rows} rows)",
        "",
        f"{'variant':<9} {'Q':>2} {'paper un':>9} {'uncompressed':>13} "
        f"{'paper zip':>9} {'compressed':>13}",
    ]
    for name in ("basic", "chunks", "optcols", "optdicts"):
        for query_id in (1, 2, 3):
            lines.append(
                f"{name:<9} {query_id:>2} "
                f"{_PAPER_UNCOMP[name][query_id]:>9.2f} "
                f"{fmt_bytes(uncompressed[(name, query_id)]):>13} "
                f"{_PAPER_COMP[name][query_id]:>9.2f} "
                f"{fmt_bytes(compressed[(name, query_id)]):>13}"
            )
    emit_report("table3_zippy", lines)

    # Zippy clearly helps the unoptimized stages...
    for name in ("basic", "chunks"):
        for query_id in (1, 2, 3):
            assert compressed[(name, query_id)] < uncompressed[(name, query_id)]
    # ... while the hand-optimized encodings are already near the wall:
    # compression may only add per-chunk framing overhead (<= 3%).
    for name in ("optcols", "optdicts"):
        for query_id in (1, 2, 3):
            assert compressed[(name, query_id)] <= (
                uncompressed[(name, query_id)] * 1.03 + 4096
            )
    # Partitioning improves Q1's compressed size a lot (paper: 10.8x).
    assert compressed[("basic", 1)] / compressed[("chunks", 1)] > 3
    # The wall: once partitioned, hand-optimizations change compressed
    # Q2 sizes by far less than they change uncompressed sizes.
    uncomp_gain = uncompressed[("chunks", 2)] / uncompressed[("optdicts", 2)]
    comp_gain = compressed[("chunks", 2)] / compressed[("optdicts", 2)]
    assert comp_gain < uncomp_gain
    assert 0.5 < comp_gain < 2.0, "compressed Q2 should move far less than uncompressed"
