"""Section 3 "Partitioning the Data into Chunks" memory table.

Paper (overall memory in MB):

    Query        1      2      3
    Dremel   27.94  60.37  90.79
    Basic    20.00  41.45  91.23
    Chunks   20.07  47.99  91.32

Shape: partitioning alone *slightly increases* memory (more chunk
dictionaries), and the increase is small for the fields in the
partition order (Q1 country, Q3 table_name) but larger for Q2's
many-distinct latency field.
"""

from __future__ import annotations

import pytest

from benchmarks.helpers import (
    PAPER_QUERIES,
    emit_report,
    fmt_bytes,
    query_fields,
    uncompressed_field_bytes,
)

_PAPER = {
    "basic": {1: 20.00, 2: 41.45, 3: 91.23},
    "chunks": {1: 20.07, 2: 47.99, 3: 91.32},
}


def test_chunks_memory_table(benchmark, basic_store, chunks_store):
    sizes = {}
    for name, store in (("basic", basic_store), ("chunks", chunks_store)):
        for query_id in (1, 2, 3):
            store.execute(PAPER_QUERIES[query_id])  # materialize virtuals
            fields = query_fields(store, query_id)
            sizes[(name, query_id)] = uncompressed_field_bytes(store, fields)

    benchmark(lambda: chunks_store.execute(PAPER_QUERIES[1]))

    lines = [
        "Section 3 'Chunks' — overall memory after partitioning "
        f"({chunks_store.n_rows} rows, {chunks_store.n_chunks} chunks)",
        "",
        f"{'variant':<8} {'Q':>2} {'paper MB':>9} {'measured':>12} {'vs basic':>9}",
    ]
    for name in ("basic", "chunks"):
        for query_id in (1, 2, 3):
            ratio = sizes[(name, query_id)] / sizes[("basic", query_id)]
            lines.append(
                f"{name:<8} {query_id:>2} {_PAPER[name][query_id]:>9.2f} "
                f"{fmt_bytes(sizes[(name, query_id)]):>12} {ratio:>8.3f}x"
            )
    emit_report("table_chunks", lines)

    for query_id in (1, 2, 3):
        basic = sizes[("basic", query_id)]
        chunks = sizes[("chunks", query_id)]
        # Partitioning may only add chunk-dictionary overhead...
        assert chunks >= basic * 0.999
        # ... and the overhead stays modest (paper: <= ~16%).
        assert chunks <= basic * 1.5, f"Q{query_id} overhead too large"
    # Q2 (latency: many distinct values per chunk) grows more than the
    # partition-order fields of Q1/Q3 in relative terms.
    growth = {
        q: sizes[("chunks", q)] / sizes[("basic", q)] for q in (1, 2, 3)
    }
    assert growth[2] >= growth[1]
    assert growth[2] >= growth[3]
