"""Section 4: distributed execution — tree rewrite, replication, scaling.

The paper distributes data quasi-randomly over machines, executes
group-by queries on a computation tree (aggregating at every level),
and sends each sub-query to a primary and a replica, taking the faster
answer. "An individual server on average spends less than 70
milliseconds on a sub-query."

Shape asserted:

- sharded execution returns exactly the single-node results;
- replication reduces tail latency under heavy stragglers;
- the computation tree keeps root merge work bounded as shards grow
  (per-level aggregation rather than a flat merge at the root).
"""

from __future__ import annotations

from benchmarks.helpers import (
    CHUNK_ROWS,
    PARTITION_FIELDS,
    emit_report,
    store_variant,
)
from repro.core.datastore import DataStoreOptions
from repro.distributed import ClusterConfig, SimulatedCluster
from repro.testing import assert_results_equal

_QUERY = (
    "SELECT country, COUNT(*) as c, SUM(latency) as s FROM data "
    "GROUP BY country ORDER BY c DESC LIMIT 10"
)

_OPTIONS = None


def _options():
    return DataStoreOptions(
        partition_fields=PARTITION_FIELDS,
        max_chunk_rows=CHUNK_ROWS,
        reorder_rows=True,
    )


def _tail_latency(cluster, query, repeats=25) -> list[float]:
    cluster.execute(query)  # warm memory
    return sorted(
        cluster.execute(query)[1].latency_seconds for __ in range(repeats)
    )


def test_distributed_equals_single_node(benchmark, table):
    cluster = SimulatedCluster.build(
        table, n_shards=6, store_options=_options(),
        config=ClusterConfig(n_machines=8, seed=2),
    )
    single = store_variant("reorder")
    result, metrics = cluster.execute(_QUERY)
    assert_results_equal(result.rows(), single.execute(_QUERY).rows())
    assert metrics.sub_queries == 6
    benchmark(lambda: cluster.execute(_QUERY))


def test_replication_improves_tail(benchmark, table):
    def build(replication):
        return SimulatedCluster.build(
            table, n_shards=6, store_options=_options(),
            config=ClusterConfig(
                n_machines=8,
                seed=77,
                replication=replication,
                straggler_probability=0.15,
                straggler_slowdown=30.0,
            ),
        )

    unreplicated = _tail_latency(build(1), _QUERY)
    replicated = _tail_latency(build(2), _QUERY)
    p90_un = unreplicated[int(len(unreplicated) * 0.9)]
    p90_re = replicated[int(len(replicated) * 0.9)]
    mean_un = sum(unreplicated) / len(unreplicated)
    mean_re = sum(replicated) / len(replicated)

    lines = [
        "Section 4 — replication vs stragglers "
        "(15% straggler probability, 30x slowdown)",
        "",
        f"{'':<14} {'mean ms':>8} {'p90 ms':>8}",
        f"{'1 replica':<14} {1000 * mean_un:>8.2f} {1000 * p90_un:>8.2f}",
        f"{'2 replicas':<14} {1000 * mean_re:>8.2f} {1000 * p90_re:>8.2f}",
    ]
    emit_report("distributed_replication", lines)

    assert mean_re < mean_un
    assert p90_re <= p90_un

    cluster = build(2)
    benchmark(lambda: cluster.execute(_QUERY))


def test_tree_bounds_merge_work(benchmark, table):
    """Per-level aggregation: root fan-in stays <= fanout regardless of
    shard count (the reason for the recursive rewrite)."""
    from repro.distributed.tree import ComputationTree

    small = ComputationTree(4, fanout=4)
    large = ComputationTree(64, fanout=4)
    # Work grows with shards but spreads over levels: the root always
    # merges at most `fanout` children.
    assert small.depth == 1
    assert large.depth == 3

    cluster = SimulatedCluster.build(
        table, n_shards=12, store_options=_options(),
        config=ClusterConfig(n_machines=12, seed=5, fanout=3),
    )
    __, metrics = cluster.execute(_QUERY)
    # 12 leaves at fanout 3: 4 first-level merges + 2 + 1 -> operations
    # counted per merged child.
    assert metrics.merge_operations >= 12
    benchmark(lambda: cluster.execute(_QUERY))
