"""Supervised process execution under REAL worker faults (PR 8).

Not a paper table — the next point of the repo's own trajectory:
`BENCH_PR8.json` records recovery latency, row coverage and the
respawn/retry/timeout totals of the process executor while a seeded
chaos plan SIGKILLs its workers, ``os._exit``s them and hangs them
mid-scan, so later PRs can diff real (not simulated) fault handling.

What is asserted unconditionally (correctness, not speed):

- the fault-free scenario is fully available with full coverage and no
  recovery machinery engaged;
- every transient-fault scenario (one-shot kill / exit / hang)
  recovers to 100% availability, and every result the executor reports
  as *complete* matches the fault-free serial reference row-for-row;
- the persistent-kill scenario degrades rather than fails: incomplete
  answers carry an exact row-coverage fraction, and the loss stays
  confined (the isolation pass saves every collateral chunk);
- no scenario leaks a shared-memory segment.

Recovery *speed* depends on the host (pool respawn latency is real
wall-clock here), so the latency gates only run with >= 4 cores —
on smaller boxes the numbers are still recorded, never asserted.
"""

from __future__ import annotations

import json
import os

from benchmarks.helpers import RESULTS_DIR, emit_report
from repro.workload.chaosbench import (
    ProcessChaosBenchConfig,
    render_process_chaos_report,
    run_process_chaos_bench,
)

_TRANSIENT = ("kill", "exit", "hang")


def test_process_chaos_trajectory():
    config = ProcessChaosBenchConfig(
        rows=4_000,
        workers=2,
        queries_per_scenario=3,
        deadline_seconds=0.75,
        max_retries=2,
    )
    report = run_process_chaos_bench(config)
    report["pr"] = 8

    emit_report("process_chaos", render_process_chaos_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR8.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    points = {point["scenario"]: point for point in report["scenarios"]}

    # Fault-free baseline: nothing to recover from.
    baseline = points["none"]
    assert baseline["availability"] == 1.0
    assert baseline["mean_row_coverage"] == 1.0
    assert baseline["respawns"] == 0
    assert baseline["unserved_tasks"] == 0

    # Transient faults: the supervisor recovers everything, and every
    # complete answer is bit-identical to the serial reference.
    for name in _TRANSIENT:
        point = points[name]
        assert point["availability"] == 1.0, name
        assert point["mean_row_coverage"] == 1.0, name
        assert point["unserved_tasks"] == 0, name
        assert point["respawns"] >= 1, name  # the fault really fired

    # Persistent kill: graceful degradation with exact accounting —
    # only the poisoned chunk is lost, never its wave siblings.
    poisoned = points["kill-persistent"]
    assert poisoned["availability"] == 0.0
    assert 0.0 < poisoned["min_row_coverage"] < 1.0
    assert poisoned["unserved_tasks"] == config.queries_per_scenario

    # Universal gates: no silent wrong answers, exact coverage, no
    # leaked shared memory, anywhere.
    for point in report["scenarios"]:
        assert point["complete_results_match_reference"], point["scenario"]
        assert point["coverage_accounting_exact"], point["scenario"]
        assert point["leaked_segments"] == [], point["scenario"]

    # Recovery-speed gates: real wall clock, so only on hosts with
    # enough cores that pool respawns are not serialized with the scan.
    if (os.cpu_count() or 1) >= 4:
        for name in ("kill", "exit"):
            overhead = points[name]["recovery_overhead_ms"]
            assert overhead < 5_000, (name, overhead)
        # A hung worker costs at least one deadline but not many.
        hang_overhead = points["hang"]["recovery_overhead_ms"]
        assert hang_overhead < 10_000 * config.deadline_seconds, hang_overhead
