"""Table 1: CSV / record-io / column-io(Dremel) / Basic, Queries 1-3.

Paper (5M rows, C++):

    Latency in ms                 Memory in MB
    Query       1      2      3       1      2      3
    CSV     55099  75207  71778   573.3  573.3  573.3
    rec-io  27134  50587  39235   551.1  551.1  551.1
    Dremel   7874  18191  48628    27.9   60.4   90.8
    Basic      20   2144    686    20.0   41.5   91.2

Shape asserted here (scaled-down Python substrate):

- latency: Basic beats every full-scan backend on each query, by a
  large factor on Query 1 (the counts-array inner loop);
- memory: row formats charge the whole file; column-io charges only
  referenced columns; Basic's uncompressed dictionary encoding is in
  the same ballpark as column-io's compressed columns.
"""

from __future__ import annotations


import pytest

from benchmarks.helpers import PAPER_QUERIES, emit_report, fmt_bytes, mean_ms

_PAPER_LATENCY = {
    "csv": {1: 55099, 2: 75207, 3: 71778},
    "record-io": {1: 27134, 2: 50587, 3: 39235},
    "column-io": {1: 7874, 2: 18191, 3: 48628},
    "basic": {1: 20, 2: 2144, 3: 686},
}
_PAPER_MEMORY_MB = {
    "csv": {1: 573.3, 2: 573.3, 3: 573.3},
    "record-io": {1: 551.1, 2: 551.1, 3: 551.1},
    "column-io": {1: 27.9, 2: 60.4, 3: 90.8},
    "basic": {1: 20.0, 2: 41.5, 3: 91.2},
}

_measured: dict[tuple[str, int], tuple[float, int]] = {}


def _run(backend_name, executor, query_id, benchmark):
    query = PAPER_QUERIES[query_id]
    executor(query)  # warm-up (materializes virtual fields once)
    result_holder = {}

    def run():
        result_holder["result"] = executor(query)

    benchmark(run)
    result = result_holder["result"]
    _measured[(backend_name, query_id)] = (
        mean_ms(benchmark),
        result.stats.memory_bytes,
    )
    return result


@pytest.mark.parametrize("query_id", [1, 2, 3])
@pytest.mark.parametrize("backend_name", ["csv", "record-io", "column-io"])
def test_baseline_backend(benchmark, baseline_files, backend_name, query_id):
    backend = baseline_files[backend_name]
    result = _run(backend_name, backend.execute, query_id, benchmark)
    assert result.table.n_rows > 0


@pytest.mark.parametrize("query_id", [1, 2, 3])
def test_basic_datastore(benchmark, basic_store, query_id):
    result = _run(query_id=query_id, backend_name="basic",
                  executor=basic_store.execute, benchmark=benchmark)
    assert result.table.n_rows > 0


def test_zz_report_and_shape(benchmark, basic_store, baseline_files, table):
    """Emit the Table 1 reproduction and assert its shape."""
    if len(_measured) < 12:
        pytest.skip("run the full module to produce the report")
    benchmark(lambda: basic_store.execute(PAPER_QUERIES[1]))
    lines = [
        "Table 1 — latency (ms) and memory per backend "
        f"({table.n_rows} rows; paper used 5M rows in C++)",
        "",
        f"{'backend':<10} {'Q':>2} {'paper ms':>9} {'ms':>10} "
        f"{'paper MB':>9} {'memory':>12}",
    ]
    for name in ("csv", "record-io", "column-io", "basic"):
        for query_id in (1, 2, 3):
            ms, mem = _measured[(name, query_id)]
            lines.append(
                f"{name:<10} {query_id:>2} {_PAPER_LATENCY[name][query_id]:>9} "
                f"{ms:>10.1f} {_PAPER_MEMORY_MB[name][query_id]:>9.1f} "
                f"{fmt_bytes(mem):>12}"
            )
    emit_report("table1_backends", lines)

    # -- shape assertions -------------------------------------------------
    for query_id in (1, 2, 3):
        basic_ms = _measured[("basic", query_id)][0]
        for name in ("csv", "record-io", "column-io"):
            assert basic_ms < _measured[(name, query_id)][0], (
                f"Basic should beat {name} on Q{query_id}"
            )
    # Query 1 speedup is the headline: >= 20x vs CSV in the paper
    # (2750x); require >= 20x here.
    assert _measured[("csv", 1)][0] / _measured[("basic", 1)][0] > 20
    # Row formats pay the whole file; column-io only its columns.
    assert (
        _measured[("column-io", 1)][1]
        < _measured[("csv", 1)][1]
    )
    assert (
        _measured[("column-io", 1)][1]
        < _measured[("record-io", 1)][1]
    )
    # Basic's Q1 memory (one small column) is far below the row formats.
    assert _measured[("basic", 1)][1] < _measured[("csv", 1)][1] / 5
