"""Parallel chunk-scan executor + bounded chunk-result cache (PR 2).

Not a paper table — this is the first point of the repo's own perf
trajectory: `BENCH_PR2.json` records serial-vs-parallel scan timings
per worker count and hit/miss/eviction behaviour per cache policy, so
later PRs can diff against it.

What is asserted unconditionally (correctness, not speed):

- parallel results are identical to serial at every worker count;
- the chunk cache stays within its byte budget while still producing
  hits under eviction pressure.

The ≥1.5x speedup criterion only makes sense with cores to spread
over: the GIL-releasing numpy kernels cannot beat serial on a
single-CPU box, where the thread pool is pure overhead. The speedup
assertion is therefore gated on ``os.cpu_count() >= 4``; the measured
numbers are recorded in the JSON either way.
"""

from __future__ import annotations

import json
import os

from benchmarks.helpers import BENCH_ROWS, RESULTS_DIR, emit_report
from repro.workload.benchscan import (
    ScanBenchConfig,
    render_scan_report,
    run_scan_bench,
)

WORKER_SWEEP = (1, 2, 4)


def test_parallel_scan_trajectory():
    config = ScanBenchConfig(
        rows=BENCH_ROWS,
        workers=WORKER_SWEEP,
        policies=("lru", "2q", "arc"),
        repeats=3,
    )
    report = run_scan_bench(config)
    report["pr"] = 2

    emit_report("parallel_scan", render_scan_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR2.json"
    out_path.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    # Correctness gates — these hold on any machine.
    assert report["results_identical_to_serial"]
    for entry in report["cache_policies"]:
        assert entry["resident_bytes"] <= entry["capacity_bytes"]
        assert entry["evictions"] > 0
        assert entry["hits"] > 0

    # Speedup gate — only meaningful with real cores to fan out over.
    if (os.cpu_count() or 1) >= 4:
        at_four = next(
            point for point in report["sweep"] if point["workers"] == 4
        )
        assert at_four["speedup_vs_serial"] >= 1.5
