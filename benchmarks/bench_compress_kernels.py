"""Vectorized compression kernels (PR 5).

Not a paper table — the fourth point of the repo's own perf trajectory:
`BENCH_PR5.json` records per-codec encode/decode throughput (MB/s),
compression ratios, and scalar-vs-kernel speedups, so later PRs can
diff codec performance against it.

What is asserted unconditionally (correctness, not speed):

- every codec's kernel output is byte-identical to its frozen scalar
  oracle in repro.compress.reference on the bench corpora;
- every codec round-trips its corpus;
- the registry's per-codec CompressionStats saw the traffic.

The ≥3x decode-speedup criterion for the varint-stream and RLE kernels
needs enough data to amortize numpy setup — on toy inputs constant
factors dominate — so, like the import bench, it is gated on scale;
the measured numbers are recorded in the JSON either way.

The Huffman corpus stays small on purpose: the frozen scalar encoder
accumulates its bitstream in one big int and is accidentally quadratic,
so a large corpus times the oracle's pathology, not the codec.
"""

from __future__ import annotations

import json
import os

from benchmarks.helpers import RESULTS_DIR, emit_report
from repro.workload.benchcompress import (
    CompressBenchConfig,
    render_compress_report,
    run_compress_bench,
)

#: The acceptance run uses 200k rows/bytes; scale down only explicitly.
COMPRESS_ROWS = int(os.environ.get("REPRO_BENCH_COMPRESS_ROWS", "200000"))


def test_compress_kernel_trajectory():
    config = CompressBenchConfig(rows=COMPRESS_ROWS, repeats=3)
    report = run_compress_bench(config)
    report["pr"] = 5

    emit_report("compress_kernels", render_compress_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR5.json"
    out_path.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    # Correctness gates — these hold on any machine at any scale.
    for name, entry in report["codecs"].items():
        assert entry["byte_identical"], name
        assert entry["round_trip"], name
        assert entry["encoded_bytes"] > 0, name
    for name in ("rle", "zippy", "lzo", "huffman"):
        stats = report["codec_stats"][name]
        assert stats["encode_calls"] > 0, name
        assert stats["decode_calls"] > 0, name
        assert stats["encode_errors"] == 0, name
        assert stats["decode_errors"] == 0, name

    # Speedup gates — need enough data for bulk kernels to amortize.
    if config.rows >= 100_000:
        assert report["codecs"]["varint-stream"]["decode_speedup"] >= 3.0
        assert report["codecs"]["rle"]["decode_speedup"] >= 3.0
