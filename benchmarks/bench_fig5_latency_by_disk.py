"""Figure 5: average query latency by bytes loaded from disk (log2 buckets).

Paper: "The average latency naturally increases with the amount of
data which needs to be read from disk into memory" — Figure 5 plots
average latency (seconds) against log2 buckets of cumulative disk
bytes. Also: "on average over 70% of the queries do not need to access
any data from disk" and "96.5% of the queries access only 1 GB or
less".

We replay a drill-down mix on the simulated cluster with a constrained
per-machine memory budget, bucket queries by log2 of cumulative disk
bytes, and assert the same shape: most queries hit no disk at all, and
average latency grows monotonically (modulo noise) across the populated
buckets.
"""

from __future__ import annotations

import math

from benchmarks.helpers import CHUNK_ROWS, PARTITION_FIELDS, emit_report
from repro.core.datastore import DataStoreOptions
from repro.distributed import ClusterConfig, MachineConfig, SimulatedCluster
from repro.workload.queries import DrillDownConfig, generate_drilldown_sessions


def _bucket(disk_bytes: int) -> int:
    if disk_bytes <= 0:
        return -1  # served entirely from memory
    return int(math.floor(math.log2(disk_bytes)))


def test_fig5_latency_vs_disk(benchmark, table):
    cluster = SimulatedCluster.build(
        table,
        n_shards=8,
        store_options=DataStoreOptions(
            partition_fields=PARTITION_FIELDS,
            max_chunk_rows=CHUNK_ROWS,
            reorder_rows=True,
        ),
        config=ClusterConfig(
            n_machines=8,
            seed=17,
            # Budget sized so the warm working set fits in memory (the
            # paper's steady state) while cold starts and freshly
            # materialized virtual fields still load from disk. Disk
            # bandwidth is scaled down with the dataset so its cost is
            # visible against sub-ms scans.
            machine=MachineConfig(
                memory_bytes=416 * 1024,
                disk_bandwidth_bytes_per_second=10e6,
            ),
            load_sigma=0.25,
            straggler_probability=0.02,
        ),
    )
    clicks = generate_drilldown_sessions(
        table,
        DrillDownConfig(
            n_sessions=10, clicks_per_session=3, queries_per_click=6, seed=3
        ),
    )
    samples: list[tuple[int, float]] = []
    for batch in clicks:
        for sql in batch:
            __, metrics = cluster.execute(sql)
            samples.append(
                (metrics.bytes_loaded_from_disk, metrics.latency_seconds)
            )

    benchmark(lambda: cluster.execute(clicks[0][0]))

    buckets: dict[int, list[float]] = {}
    for disk_bytes, latency in samples:
        buckets.setdefault(_bucket(disk_bytes), []).append(latency)
    memory_share = len(buckets.get(-1, [])) / len(samples)

    lines = [
        "Figure 5 — average latency by log2 bucket of disk bytes loaded "
        f"({len(samples)} queries, {cluster.n_shards} shards, "
        f"{cluster.n_machines} machines)",
        "",
        f"paper: >70% of queries touch no disk; latency rises with disk bytes",
        f"measured: {memory_share:.1%} of queries loaded nothing from disk",
        "",
        f"{'bucket':>10} {'queries':>8} {'avg latency (ms)':>17}",
    ]
    ordered_buckets = sorted(buckets)
    averages = []
    for bucket in ordered_buckets:
        latencies = buckets[bucket]
        avg = sum(latencies) / len(latencies)
        averages.append((bucket, avg, len(latencies)))
        label = "memory" if bucket == -1 else f"2^{bucket}B"
        lines.append(f"{label:>10} {len(latencies):>8} {1000 * avg:>17.2f}")
    emit_report("fig5_latency_by_disk", lines)

    # Shape 1: the majority of queries are served from memory.
    assert memory_share > 0.5, f"only {memory_share:.0%} in-memory"
    # Shape 2: disk-touching queries are slower on average than
    # in-memory ones, and the largest bucket is slower than the
    # smallest disk bucket.
    disk_buckets = [entry for entry in averages if entry[0] >= 0]
    assert disk_buckets, "memory budget never forced a disk load"
    memory_avg = dict(
        (bucket, avg) for bucket, avg, __ in averages
    ).get(-1)
    disk_avg = sum(avg * n for __, avg, n in disk_buckets) / sum(
        n for __, __, n in disk_buckets
    )
    assert disk_avg > memory_avg
    if len(disk_buckets) >= 2:
        assert disk_buckets[-1][1] > disk_buckets[0][1] * 0.8
