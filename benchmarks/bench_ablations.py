"""Ablations: what each design choice buys, measured in isolation.

Not a paper table — these quantify the individual mechanisms the paper
stacks together, on the same workload the other benches use:

1. **Chunk skipping** (partitioning on vs off) for a drill-down mix;
2. **Chunk-result caching** (on vs off) for repeated queries;
3. **Top-k before dictionary lookup** (LIMIT present vs absent on the
   many-distinct group field);
4. **Cache eviction policies** (LRU vs 2Q vs ARC) under a hot-set +
   scan trace, the Section 5 motivation.
"""

from __future__ import annotations

import time

from benchmarks.helpers import (
    CHUNK_ROWS,
    PARTITION_FIELDS,
    emit_report,
    mean_ms,
)
from repro.core.datastore import DataStore, DataStoreOptions
from repro.storage.cache import make_cache
from repro.workload.queries import DrillDownConfig, generate_drilldown_sessions


def _drilldown_queries(table, n=40):
    clicks = generate_drilldown_sessions(
        table,
        DrillDownConfig(n_sessions=5, clicks_per_session=4, queries_per_click=2),
    )
    flat = [sql for batch in clicks for sql in batch]
    return flat[:n]


def test_ablation_skipping(benchmark, table):
    """Partition-based skipping vs single-chunk full scans.

    The honest metric here is *rows touched*: in the paper's C++
    substrate scan time dominates, so skipping 85% of rows directly
    cuts latency. In pure Python the per-chunk fixed overhead (a few
    numpy calls per chunk) is comparable to scanning a whole small
    chunk, so with very fine chunking latency gains shrink — we
    therefore use moderately sized chunks here, assert the work
    reduction strictly, and require latency to be at least competitive.
    """
    partitioned = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=PARTITION_FIELDS,
            max_chunk_rows=max(CHUNK_ROWS, table.n_rows // 24),
            reorder_rows=True,
            cache_chunk_results=False,
        ),
    )
    full_scan = DataStore.from_table(
        table, DataStoreOptions(cache_chunk_results=False)
    )
    queries = _drilldown_queries(table)
    for store in (partitioned, full_scan):
        for sql in queries:
            store.execute(sql)  # warm: materialize virtual fields

    def run(store):
        started = time.perf_counter()
        scanned = total = 0
        for sql in queries:
            stats = store.execute(sql).stats
            scanned += stats.rows_scanned
            total += stats.rows_total
        return time.perf_counter() - started, scanned / total

    with_skip, scan_frac = run(partitioned)
    without, full_frac = run(full_scan)

    benchmark(lambda: partitioned.execute(queries[0]))

    lines = [
        "Ablation 1 — chunk skipping on the drill-down mix "
        f"({len(queries)} queries, {partitioned.n_chunks} chunks)",
        "",
        f"partitioned (skipping): {1000 * with_skip:8.1f} ms, "
        f"rows scanned {scan_frac:.1%}",
        f"single chunk (no skip): {1000 * without:8.1f} ms, "
        f"rows scanned {full_frac:.1%}",
        f"work reduction: {full_frac / scan_frac:.1f}x rows",
        "",
        "note: in the paper's C++ substrate scan time dominates, so the",
        "rows saved translate 1:1 into latency; in pure Python per-chunk",
        "overhead absorbs part of the win at this scale.",
    ]
    emit_report("ablation_skipping", lines)
    # (The single-chunk store can also "skip" when a restriction matches
    # nothing at all — its row mask is computed and found empty — so
    # full_frac may be below 1. The partitioned store must still touch
    # substantially fewer rows.)
    assert scan_frac < 0.35, f"skipping only reached {scan_frac:.0%} scanned"
    assert scan_frac < full_frac * 0.75
    # Latency must at least be competitive despite per-chunk overhead.
    assert with_skip < without * 1.5


def test_ablation_chunk_cache(benchmark, table):
    """Chunk-result caching for repeated fully-active queries."""
    def build(cache: bool) -> DataStore:
        return DataStore.from_table(
            table,
            DataStoreOptions(
                partition_fields=PARTITION_FIELDS,
                max_chunk_rows=CHUNK_ROWS,
                reorder_rows=True,
                cache_chunk_results=cache,
            ),
        )

    query = (
        "SELECT country, COUNT(*) as c, SUM(latency) as s FROM data "
        "GROUP BY country ORDER BY c DESC LIMIT 10"
    )
    cached_store = build(True)
    uncached_store = build(False)
    cached_store.execute(query)
    uncached_store.execute(query)

    def repeat(store, n=10):
        started = time.perf_counter()
        for __ in range(n):
            store.execute(query)
        return time.perf_counter() - started

    with_cache = repeat(cached_store)
    without = repeat(uncached_store)
    stats = cached_store.execute(query).stats

    benchmark(lambda: cached_store.execute(query))

    lines = [
        "Ablation 2 — chunk-result caching, repeated unrestricted group-by",
        "",
        f"with cache:    {1000 * with_cache:8.1f} ms "
        f"(rows from cache: {stats.cache_fraction:.0%})",
        f"without cache: {1000 * without:8.1f} ms",
        f"speedup: {without / with_cache:.2f}x",
    ]
    emit_report("ablation_chunk_cache", lines)
    assert stats.cache_fraction == 1.0
    assert with_cache < without


def test_ablation_topk(benchmark, reorder_store):
    """The paper's Query 3 trick: look up only the LIMIT k group values."""
    store = reorder_store
    with_limit = (
        "SELECT table_name, COUNT(*) as c FROM data "
        "GROUP BY table_name ORDER BY c DESC LIMIT 10"
    )
    without_limit = (
        "SELECT table_name, COUNT(*) as c FROM data "
        "GROUP BY table_name ORDER BY c DESC"
    )
    store.execute(with_limit)
    store.execute(without_limit)

    def timed(sql, n=5):
        started = time.perf_counter()
        for __ in range(n):
            store.execute(sql)
        return (time.perf_counter() - started) / n

    fast = timed(with_limit)
    slow = timed(without_limit)

    benchmark(lambda: store.execute(with_limit))

    n_groups = len(store.field("table_name").dictionary)
    lines = [
        f"Ablation 3 — top-k before dictionary lookup ({n_groups} groups)",
        "",
        f"LIMIT 10 (top-k path):        {1000 * fast:8.2f} ms",
        f"no LIMIT (materialize all):   {1000 * slow:8.2f} ms",
        f"speedup: {slow / fast:.1f}x",
    ]
    emit_report("ablation_topk", lines)
    assert fast < slow


def test_ablation_cache_policies(benchmark):
    """LRU vs 2Q vs ARC under a hot set mixed with one-time scans."""
    import random

    def run_trace(policy: str) -> float:
        rng = random.Random(11)
        cache = make_cache(policy, 60)
        hot = [f"hot-{i}" for i in range(40)]
        scans = 0
        for step in range(6000):
            if step % 50 == 49:
                for __ in range(120):
                    scans += 1
                    key = f"scan-{scans}"
                    if cache.get(key) is None:
                        cache.put(key, 1)
            key = rng.choice(hot)
            if cache.get(key) is None:
                cache.put(key, 1)
        return cache.stats.hit_rate

    rates = {policy: run_trace(policy) for policy in ("lru", "2q", "arc")}
    benchmark(lambda: run_trace("arc"))

    lines = [
        "Ablation 4 — cache policies on hot-set + periodic scans",
        "",
    ] + [f"{policy:<4}: hit rate {rate:.1%}" for policy, rate in rates.items()]
    emit_report("ablation_cache_policies", lines)

    assert rates["2q"] > rates["lru"]
    assert rates["arc"] > rates["lru"]
