"""Benchmark fixtures: the shared dataset, stores and baseline files."""

from __future__ import annotations

import pytest

from benchmarks.helpers import bench_table, store_variant
from repro.formats import (
    ColumnIoBackend,
    CsvBackend,
    RecordIoBackend,
    write_columnio,
    write_csv,
    write_recordio,
)


@pytest.fixture(scope="session")
def table():
    return bench_table()


@pytest.fixture(scope="session")
def basic_store():
    return store_variant("basic")


@pytest.fixture(scope="session")
def chunks_store():
    return store_variant("chunks")


@pytest.fixture(scope="session")
def optcols_store():
    return store_variant("optcols")


@pytest.fixture(scope="session")
def optdicts_store():
    return store_variant("optdicts")


@pytest.fixture(scope="session")
def reorder_store():
    return store_variant("reorder")


@pytest.fixture(scope="session")
def baseline_files(table, tmp_path_factory):
    base = tmp_path_factory.mktemp("baselines")
    csv_path = str(base / "logs.csv")
    rio_path = str(base / "logs.rio")
    cio_path = str(base / "logs.cio")
    write_csv(table, csv_path)
    write_recordio(table, rio_path)
    write_columnio(table, cio_path)
    return {
        "csv": CsvBackend(csv_path, table.schema),
        "record-io": RecordIoBackend(rio_path, table.schema),
        "column-io": ColumnIoBackend(cio_path),
    }
