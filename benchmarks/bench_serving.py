"""Multi-tenant serving layer: QPS, tail latency, cache reuse (PR 10).

Not a paper table — a point on the repo's own perf trajectory:
`BENCH_PR10.json` records, per offered concurrency, the closed-loop
QPS and p50/p95/p99 of a cold replay (drill-down subsumption reuse
only) and a warm replay (exact canonical-plan hits) of the Section 6
drill-down trace through :class:`repro.service.QueryService`, plus an
open-loop pass above saturation that demonstrates explicit load
shedding.

What is asserted unconditionally (correctness, not speed):

- every sampled served result is content-identical to a direct
  execution on the store (the semantic cache and subsumption reuse may
  never change an answer);
- outcome accounting is exact for every pass: completed + rejected +
  failed == queries submitted, with zero failures;
- closed-loop passes complete everything (nothing shed below the
  admission limits), while the open-loop overload pass sheds a nonzero
  number of queries as explicit ``QueryRejected`` outcomes;
- warm passes hit the semantic cache for every query.

The speedup/scaling gates (warm p50 >= 5x cold; multi-client QPS not
below single-client) are gated on ``os.cpu_count() >= 4``: on a 1-CPU
box closed-loop concurrency measures lock convoys, not parallelism.
The measured numbers are recorded in the JSON either way.
"""

from __future__ import annotations

import json
import os

from benchmarks.helpers import BENCH_ROWS, RESULTS_DIR, emit_report
from repro.workload.benchserve import (
    ServeBenchConfig,
    render_serve_report,
    run_serve_bench,
)


def test_serving_trajectory():
    config = ServeBenchConfig(rows=BENCH_ROWS, concurrencies=(1, 2, 4))
    report = run_serve_bench(config)

    emit_report("serving", render_serve_report(report))
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / "BENCH_PR10.json"
    out_path.write_text(
        json.dumps(report, indent=2) + "\n", encoding="utf-8"
    )

    # Correctness gates — these hold on any machine at any scale.
    correctness = report["correctness"]
    assert correctness["checked"] > 0
    assert correctness["mismatches"] == 0, correctness

    assert report["sweep"], "no concurrency points measured"
    for point in report["sweep"]:
        for phase in ("cold", "warm"):
            summary = point[phase]
            assert summary["queries"] == report["trace_queries"]
            assert (
                summary["completed"]
                + summary["rejected"]
                + summary["failed"]
                == summary["queries"]
            ), (point["concurrency"], phase, summary)
            assert summary["failed"] == 0, (point["concurrency"], phase)
            # Closed-loop clients stay within the admission limits.
            assert summary["rejected"] == 0, (point["concurrency"], phase)
        # The warm replay repeats the exact trace: every query must be
        # answered straight from the semantic result cache.
        assert point["warm"]["cache_hit_fraction"] == 1.0, point
        # Drill-down refinement makes subsumption reuse available cold.
        assert point["cold"]["subsumption_fraction"] > 0.0, point

    shed = report["open_loop"]
    assert (
        shed["completed"] + shed["rejected"] + shed["failed"]
        == shed["queries"]
    ), shed
    assert shed["failed"] == 0, shed
    assert shed["rejected"] > 0, (
        "open-loop overload pass shed nothing",
        shed,
    )

    # Perf gates — meaningful only with real parallel hardware.
    if (os.cpu_count() or 1) >= 4:
        for point in report["sweep"]:
            assert point["warm_p50_speedup"] >= 5.0, point
        single = next(
            p for p in report["sweep"] if p["concurrency"] == 1
        )
        multi = max(report["sweep"], key=lambda p: p["concurrency"])
        assert multi["cold"]["qps"] >= 0.8 * single["cold"]["qps"], (
            single["cold"]["qps"],
            multi["cold"]["qps"],
        )
