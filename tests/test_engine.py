"""Columnar aggregator unit tests (the vectorized engine pieces)."""

import numpy as np
import pytest

from repro.core.aggregation import (
    AvgState,
    CountDistinctState,
    CountStarState,
    MinState,
    SumState,
)
from repro.core.engine import (
    ApproxCountDistinctAggregator,
    AvgAggregator,
    ChunkData,
    CountDistinctAggregator,
    CountValueAggregator,
    MaxAggregator,
    MinAggregator,
    PresenceAggregator,
    SumAggregator,
    aggregator_states,
)
from repro.storage.dictionary import build_dictionary


def _chunk(group_ids, mask=None):
    return ChunkData(
        group_ids=np.asarray(group_ids, dtype=np.int64),
        mask=None if mask is None else np.asarray(mask, dtype=bool),
    )


def _apply(aggregator, data, arg_ids=None):
    arg = None if arg_ids is None else np.asarray(arg_ids, dtype=np.int64)
    aggregator.apply(aggregator.chunk_partial(data, arg))


class TestPresence:
    def test_counts_rows_per_group(self):
        agg = PresenceAggregator(3)
        _apply(agg, _chunk([0, 1, 1, 2, 2, 2]))
        assert agg.counts.tolist() == [1, 2, 3]

    def test_mask_applies(self):
        agg = PresenceAggregator(2)
        _apply(agg, _chunk([0, 0, 1, 1], mask=[True, False, True, True]))
        assert agg.counts.tolist() == [1, 2]

    def test_accumulates_across_chunks(self):
        agg = PresenceAggregator(2)
        _apply(agg, _chunk([0, 1]))
        _apply(agg, _chunk([1, 1]))
        assert agg.counts.tolist() == [1, 3]

    def test_results_only_present(self):
        agg = PresenceAggregator(3)
        _apply(agg, _chunk([0, 2]))
        present = agg.counts > 0
        assert agg.results(present) == [1, 1]


class TestCountValue:
    def test_nulls_excluded_via_gid_zero(self):
        agg = CountValueAggregator(2, arg_has_null=True)
        # arg gid 0 means NULL for a has_null dictionary.
        _apply(agg, _chunk([0, 0, 1, 1]), arg_ids=[0, 3, 0, 5])
        assert agg.counts.tolist() == [1, 1]

    def test_without_nulls_counts_all(self):
        agg = CountValueAggregator(1, arg_has_null=False)
        _apply(agg, _chunk([0, 0, 0]), arg_ids=[0, 1, 2])
        assert agg.counts.tolist() == [3]


class TestSumAvg:
    def test_sum_uses_dictionary_values(self):
        values = np.array([10.0, 20.0, 30.0])
        agg = SumAggregator(2, values, arg_has_null=False)
        _apply(agg, _chunk([0, 0, 1]), arg_ids=[0, 2, 1])
        assert agg.results(np.array([True, True])) == [40.0, 20.0]

    def test_sum_null_group_is_none(self):
        values = np.array([np.nan, 5.0])  # gid 0 = NULL
        agg = SumAggregator(2, values, arg_has_null=True)
        _apply(agg, _chunk([0, 1]), arg_ids=[0, 1])
        assert agg.results(np.array([True, True])) == [None, 5.0]

    def test_avg(self):
        values = np.array([2.0, 4.0])
        agg = AvgAggregator(1, values, arg_has_null=False)
        _apply(agg, _chunk([0, 0]), arg_ids=[0, 1])
        assert agg.results(np.array([True])) == [3.0]


class TestMinMax:
    def test_min_max_over_ranks(self):
        dictionary = build_dictionary(["apple", "mango", "zebra"])
        low = MinAggregator(2, dictionary, arg_has_null=False)
        high = MaxAggregator(2, dictionary, arg_has_null=False)
        data = _chunk([0, 0, 1])
        for agg in (low, high):
            _apply(agg, data, arg_ids=[2, 0, 1])
        present = np.array([True, True])
        assert low.results(present) == ["apple", "mango"]
        assert high.results(present) == ["zebra", "mango"]

    def test_empty_group_is_none(self):
        dictionary = build_dictionary([None, "x"])
        agg = MinAggregator(2, dictionary, arg_has_null=True)
        # All arg values NULL for group 0.
        _apply(agg, _chunk([0, 1]), arg_ids=[0, 1])
        assert agg.results(np.array([True, True])) == [None, "x"]

    def test_min_merges_across_chunks(self):
        dictionary = build_dictionary([1, 5, 9])
        agg = MinAggregator(1, dictionary, arg_has_null=False)
        _apply(agg, _chunk([0]), arg_ids=[2])
        _apply(agg, _chunk([0]), arg_ids=[1])
        assert agg.results(np.array([True])) == [5]


class TestCountDistinct:
    def test_dedup_across_chunks(self):
        dictionary = build_dictionary(["a", "b", "c"])
        agg = CountDistinctAggregator(1, dictionary, arg_has_null=False)
        _apply(agg, _chunk([0, 0]), arg_ids=[0, 1])
        _apply(agg, _chunk([0, 0]), arg_ids=[1, 2])
        assert agg.results(np.array([True])) == [3]

    def test_per_group_sets(self):
        dictionary = build_dictionary(["a", "b"])
        agg = CountDistinctAggregator(2, dictionary, arg_has_null=False)
        _apply(agg, _chunk([0, 0, 1]), arg_ids=[0, 0, 1])
        assert agg.results(np.array([True, True])) == [1, 1]


class TestApprox:
    def test_small_cardinality_exact(self):
        hashes = np.linspace(0.01, 0.99, 50)
        agg = ApproxCountDistinctAggregator(1, hashes, False, m=64)
        _apply(agg, _chunk([0] * 50), arg_ids=list(range(50)))
        assert agg.results(np.array([True])) == [50]

    def test_group_without_rows_is_zero(self):
        hashes = np.array([0.5])
        agg = ApproxCountDistinctAggregator(2, hashes, False, m=8)
        _apply(agg, _chunk([1]), arg_ids=[0])
        assert agg.results(np.array([True, True])) == [0, 1]


class TestStateExport:
    """aggregator_states must mirror .results() through AggStates."""

    def test_presence_export(self):
        agg = PresenceAggregator(2)
        _apply(agg, _chunk([0, 1, 1]))
        states = aggregator_states(agg, np.array([True, True]))
        assert [type(s) for s in states] == [CountStarState, CountStarState]
        assert [s.result() for s in states] == [1, 2]

    def test_sum_export(self):
        values = np.array([1.0, 2.0])
        agg = SumAggregator(1, values, arg_has_null=False)
        _apply(agg, _chunk([0, 0]), arg_ids=[0, 1])
        (state,) = aggregator_states(agg, np.array([True]))
        assert isinstance(state, SumState)
        assert state.result() == 3.0

    def test_avg_export(self):
        values = np.array([2.0, 6.0])
        agg = AvgAggregator(1, values, arg_has_null=False)
        _apply(agg, _chunk([0, 0]), arg_ids=[0, 1])
        (state,) = aggregator_states(agg, np.array([True]))
        assert isinstance(state, AvgState)
        assert state.result() == 4.0

    def test_min_export(self):
        dictionary = build_dictionary(["p", "q"])
        agg = MinAggregator(1, dictionary, arg_has_null=False)
        _apply(agg, _chunk([0]), arg_ids=[1])
        (state,) = aggregator_states(agg, np.array([True]))
        assert isinstance(state, MinState)
        assert state.result() == "q"

    def test_distinct_export_carries_values(self):
        dictionary = build_dictionary(["a", "b"])
        agg = CountDistinctAggregator(1, dictionary, arg_has_null=False)
        _apply(agg, _chunk([0, 0]), arg_ids=[0, 1])
        (state,) = aggregator_states(agg, np.array([True]))
        assert isinstance(state, CountDistinctState)
        assert state.values == {"a", "b"}

    def test_exported_states_merge(self):
        """Merging two shards' exported states == one combined shard."""
        values = np.array([1.0, 10.0])
        shard_a = SumAggregator(1, values, arg_has_null=False)
        shard_b = SumAggregator(1, values, arg_has_null=False)
        combined = SumAggregator(1, values, arg_has_null=False)
        _apply(shard_a, _chunk([0]), arg_ids=[0])
        _apply(shard_b, _chunk([0]), arg_ids=[1])
        _apply(combined, _chunk([0, 0]), arg_ids=[0, 1])
        (a,) = aggregator_states(shard_a, np.array([True]))
        (b,) = aggregator_states(shard_b, np.array([True]))
        a.merge(b)
        (expected,) = aggregator_states(combined, np.array([True]))
        assert a.result() == expected.result()
