"""DataStore tests: import invariants, queries, caching, statistics."""

import numpy as np
import pytest

from repro.core.datastore import DataStore, DataStoreOptions, factorize_values
from repro.core.table import Table
from repro.errors import BindError, ExecutionError, UnsupportedQueryError
from tests.conftest import make_store


class TestImport:
    def test_round_trip_per_field(self, log_table, log_store):
        """decode(encode(column)) == reordered original column."""
        from repro.partition.composite import PartitionSpec, partition_table
        from repro.partition.reorder import lexicographic_order, reorder_table

        order = lexicographic_order(log_table, ["country", "table_name"])
        reordered = reorder_table(log_table, order)
        spec = PartitionSpec(
            ("country", "table_name"), log_store.options.max_chunk_rows
        )
        chunk_rows = partition_table(reordered, spec)
        for name in log_table.field_names:
            store_field = log_store.field(name)
            decoded = []
            for chunk_index in range(log_store.n_chunks):
                gids = store_field.row_global_ids(chunk_index)
                decoded.extend(store_field.value_array()[gids].tolist())
            expected = []
            for rows in chunk_rows:
                expected.extend(
                    reordered.column(name).values[int(i)] for i in rows
                )
            assert decoded == expected

    def test_chunk_row_counts_sum(self, log_table, log_store):
        assert sum(log_store.chunk_row_counts) == log_table.n_rows

    def test_global_ids_are_ranks(self, log_store):
        dictionary = log_store.field("country").dictionary
        values = dictionary.values()
        assert values == sorted(values)

    def test_chunk_dicts_subset_of_global(self, log_store):
        field = log_store.field("table_name")
        n = len(field.dictionary)
        for chunk in field.chunks:
            if chunk.chunk_dict.size:
                assert int(chunk.chunk_dict.max()) < n

    def test_single_chunk_without_partitioning(self, log_table):
        store = DataStore.from_table(log_table, DataStoreOptions())
        assert store.n_chunks == 1

    def test_memory_smaller_with_optimizations(self, log_table):
        basic = DataStore.from_table(
            log_table,
            DataStoreOptions(optimized_columns=False, optimized_dicts=False),
        )
        optimized = make_store(log_table)
        fields = ["country", "table_name", "latency"]
        assert (
            optimized.memory_usage(fields)["total"]
            < basic.memory_usage(fields)["total"]
        )

    def test_unknown_field(self, log_store):
        with pytest.raises(BindError):
            log_store.field("nope")


class TestQueries:
    def test_count_star_matches_python(self, log_table, log_store):
        from collections import Counter

        result = log_store.execute(
            "SELECT country, COUNT(*) as c FROM data GROUP BY country "
            "ORDER BY c DESC LIMIT 100"
        )
        expected = Counter(log_table.column("country").values)
        assert dict(result.rows()) == dict(expected)

    def test_where_filters(self, log_table, log_store):
        result = log_store.execute(
            "SELECT COUNT(*) FROM data WHERE country = 'US'"
        )
        expected = sum(
            1 for c in log_table.column("country").values if c == "US"
        )
        assert result.rows() == [(expected,)]

    def test_sum_latency(self, log_table, log_store):
        result = log_store.execute("SELECT SUM(latency) FROM data")
        expected = sum(log_table.column("latency").values)
        assert result.rows()[0][0] == pytest.approx(expected)

    def test_group_by_alias_of_expression(self, log_store):
        result = log_store.execute(
            "SELECT date(timestamp) as d, COUNT(*) FROM data "
            "GROUP BY d ORDER BY d ASC LIMIT 3"
        )
        dates = [row[0] for row in result.rows()]
        assert dates == sorted(dates)
        assert all(len(d) == 10 for d in dates)

    def test_multi_group_by(self, log_table, log_store):
        result = log_store.execute(
            "SELECT country, user_name, COUNT(*) as c FROM data "
            "GROUP BY country, user_name ORDER BY c DESC LIMIT 5"
        )
        from collections import Counter

        pairs = Counter(
            zip(
                log_table.column("country").values,
                log_table.column("user_name").values,
            )
        )
        top = result.rows()[0]
        assert pairs[(top[0], top[1])] == top[2]

    def test_ungrouped_aggregate_on_empty_match(self, log_store):
        result = log_store.execute(
            "SELECT COUNT(*), SUM(latency) FROM data WHERE country = 'XX'"
        )
        assert result.rows() == [(0, None)]

    def test_grouped_empty_match_returns_no_rows(self, log_store):
        result = log_store.execute(
            "SELECT country, COUNT(*) FROM data WHERE country = 'XX' "
            "GROUP BY country"
        )
        assert result.rows() == []

    def test_projection_query(self, log_table, log_store):
        result = log_store.execute(
            "SELECT table_name FROM data WHERE country = 'FI' LIMIT 5"
        )
        names = set(log_table.column("table_name").values)
        assert all(row[0] in names for row in result.rows())

    def test_having(self, log_store):
        result = log_store.execute(
            "SELECT country, COUNT(*) as c FROM data GROUP BY country "
            "HAVING c > 100 ORDER BY c DESC"
        )
        assert all(row[1] > 100 for row in result.rows())

    def test_expression_over_aggregates(self, log_store):
        result = log_store.execute(
            "SELECT SUM(latency) / COUNT(*) as mean, AVG(latency) as avg "
            "FROM data"
        )
        mean, avg = result.rows()[0]
        assert mean == pytest.approx(avg)

    def test_wrong_table_name(self, log_store):
        with pytest.raises(ExecutionError):
            log_store.execute("SELECT COUNT(*) FROM other_table")

    def test_ungrouped_field_rejected(self, log_store):
        with pytest.raises(UnsupportedQueryError):
            log_store.execute("SELECT country, COUNT(*) FROM data")

    def test_min_max_strings_via_ranks(self, log_table, log_store):
        result = log_store.execute(
            "SELECT MIN(table_name), MAX(table_name) FROM data"
        )
        values = log_table.column("table_name").values
        assert result.rows() == [(min(values), max(values))]


class TestScanStats:
    def test_full_scan_counts_all_rows(self, log_table, log_store):
        result = log_store.execute("SELECT COUNT(*) FROM data")
        stats = result.stats
        assert stats.rows_total == log_table.n_rows
        assert stats.rows_skipped == 0

    def test_selective_query_skips(self, log_store):
        result = log_store.execute(
            "SELECT COUNT(*) FROM data WHERE country = 'FI'"
        )
        assert result.stats.rows_skipped > 0
        assert result.stats.skip_fraction > 0.5

    def test_fractions_sum_to_one(self, log_store):
        result = log_store.execute(
            "SELECT COUNT(*) FROM data WHERE country IN ('US', 'DE')"
        )
        stats = result.stats
        total = stats.rows_skipped + stats.rows_cached + stats.rows_scanned
        assert total == stats.rows_total

    def test_fields_accessed_recorded(self, log_store):
        result = log_store.execute(
            "SELECT country, SUM(latency) FROM data GROUP BY country"
        )
        assert "country" in result.stats.fields_accessed
        assert "latency" in result.stats.fields_accessed

    def test_memory_counts_only_accessed_fields(self, log_store):
        narrow = log_store.execute("SELECT COUNT(*) FROM data WHERE country = 'US'")
        wide = log_store.execute(
            "SELECT table_name, COUNT(*) FROM data GROUP BY table_name LIMIT 1"
        )
        assert narrow.stats.memory_bytes < wide.stats.memory_bytes


class TestChunkResultCache:
    def test_repeat_query_served_from_cache(self, log_table):
        store = make_store(log_table)
        query = "SELECT country, COUNT(*) FROM data GROUP BY country"
        first = store.execute(query)
        second = store.execute(query)
        assert first.rows() == second.rows()
        assert first.stats.rows_cached == 0
        assert second.stats.rows_cached == second.stats.rows_total
        assert second.stats.rows_scanned == 0

    def test_cache_applies_across_different_where(self, log_table):
        # A different WHERE whose fully-active chunks were already
        # computed reuses those chunk results (Section 6 caching).
        store = make_store(log_table)
        store.execute("SELECT country, COUNT(*) FROM data GROUP BY country")
        countries = sorted(set(log_table.column("country").values))
        listed = ", ".join(f"'{c}'" for c in countries)
        restricted = store.execute(
            f"SELECT country, COUNT(*) FROM data WHERE country IN ({listed}) "
            "GROUP BY country"
        )
        # Every chunk is fully active under the all-countries filter.
        assert restricted.stats.rows_cached == restricted.stats.rows_total

    def test_cache_disabled(self, log_table):
        store = make_store(log_table, cache_chunk_results=False)
        query = "SELECT country, COUNT(*) FROM data GROUP BY country"
        store.execute(query)
        second = store.execute(query)
        assert second.stats.rows_cached == 0

    def test_partial_chunks_not_cached(self, log_table):
        store = make_store(log_table)
        query = (
            "SELECT country, COUNT(*) FROM data "
            "WHERE latency > 200 GROUP BY country"
        )
        store.execute(query)
        second = store.execute(query)
        # latency isn't a partition field: chunks are PARTIAL, no cache.
        assert second.stats.rows_cached == 0


class TestFactorizeValues:
    def test_null_first(self):
        codes, ordered = factorize_values(["b", None, "a", "b"])
        assert ordered == [None, "a", "b"]
        assert codes.tolist() == [2, 0, 1, 2]

    def test_numeric_mixed(self):
        codes, ordered = factorize_values([2, 1.5, 2])
        assert ordered == [1.5, 2]
        assert codes.tolist() == [1, 0, 1]


class TestImportStats:
    def test_phases_and_sizes_populated(self, log_table, log_store):
        stats = log_store.import_stats
        assert stats is not None
        assert stats.rows == log_table.n_rows
        assert stats.columns == log_table.n_columns
        assert stats.chunks == log_store.n_chunks
        phases = stats.phase_seconds()
        assert list(phases) == [
            "factorize", "reorder", "partition", "dictionary", "encode",
            "advisor",
        ]
        assert all(seconds >= 0 for seconds in phases.values())
        assert sum(phases.values()) <= stats.total_seconds
        assert stats.dictionary_bytes > 0
        assert stats.chunk_bytes > 0

    def test_throughput_and_dict_views(self, log_store):
        stats = log_store.import_stats
        as_dict = stats.as_dict()
        assert as_dict["rows"] == stats.rows
        assert as_dict["phase_seconds"] == stats.phase_seconds()
        assert stats.rows_per_second()["total"] > 0

    def test_unpartitioned_import_single_chunk(self, log_table):
        store = DataStore.from_table(log_table, DataStoreOptions())
        stats = store.import_stats
        assert stats.chunks == 1
        assert stats.rows == log_table.n_rows

    def test_import_publishes_counters(self, log_table):
        from repro.monitoring import counters

        runs = counters.get("datastore.import.runs")
        rows = counters.get("datastore.import.rows")
        DataStore.from_table(log_table, DataStoreOptions())
        assert counters.get("datastore.import.runs") == runs + 1
        assert counters.get("datastore.import.rows") == rows + log_table.n_rows


class TestCandidateChunkPruning:
    # The soundness contract the serving layer's subsumption reuse
    # relies on: executing with candidate_chunks equal to (a superset
    # of) the query's own active footprint is bit-identical to the
    # unpruned run — pruned chunks are accounted exactly like directly
    # SKIPped ones.

    PARENT = (
        "SELECT country, COUNT(*) as c FROM data "
        "WHERE latency > 100 GROUP BY country ORDER BY c DESC LIMIT 10;"
    )
    CHILD = (
        "SELECT country, COUNT(*) as c FROM data "
        "WHERE latency > 100 AND country IN ('FI', 'US') "
        "GROUP BY country ORDER BY c DESC LIMIT 10;"
    )

    def test_refinement_pruned_by_parent_footprint(self, log_store):
        parent = log_store.execute(self.PARENT)
        direct = log_store.execute(self.CHILD)
        pruned = log_store.execute(
            self.CHILD,
            candidate_chunks=parent.stats.active_chunks,
        )
        assert pruned.content_equal(direct)
        assert pruned.rows() == direct.rows()
        assert pruned.column_names == direct.column_names
        # Identical row accounting: every chunk outside the footprint
        # was provably SKIP for the child too.
        assert pruned.stats.rows_skipped == direct.stats.rows_skipped
        assert pruned.stats.rows_scanned == direct.stats.rows_scanned
        assert pruned.stats.active_chunks == direct.stats.active_chunks

    def test_projection_path_pruned(self, log_store):
        sql = (
            "SELECT country, latency FROM data "
            "WHERE country IN ('FI', 'US') LIMIT 40;"
        )
        direct = log_store.execute(sql)
        pruned = log_store.execute(
            sql, candidate_chunks=direct.stats.active_chunks
        )
        assert pruned.rows() == direct.rows()
        assert pruned.stats.active_chunks == direct.stats.active_chunks

    def test_empty_footprint_serves_empty_result(self, log_store):
        result = log_store.execute(self.PARENT, candidate_chunks=())
        assert result.stats.rows_scanned == 0
        assert result.stats.rows_skipped == result.stats.rows_total
        assert result.stats.active_chunks == ()
