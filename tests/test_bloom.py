"""Bloom filter tests — Section 5 dictionary guards."""

import pytest

from repro.errors import StorageError
from repro.storage.bloom import BloomFilter


class TestBloomFilter:
    def test_no_false_negatives(self):
        items = [f"value-{i}" for i in range(500)]
        bloom = BloomFilter.build(items)
        assert all(item in bloom for item in items)

    def test_false_positive_rate_near_target(self):
        items = [f"member-{i}" for i in range(2000)]
        bloom = BloomFilter.build(items, fpp=0.01)
        probes = [f"absent-{i}" for i in range(5000)]
        false_positives = sum(1 for p in probes if p in bloom)
        assert false_positives / len(probes) < 0.03

    def test_definitely_absent(self):
        bloom = BloomFilter.build([f"m{i}" for i in range(100)], fpp=0.01)
        misses = sum(
            1 for i in range(1000) if not bloom.might_contain(f"zz-{i}")
        )
        assert misses > 950

    def test_works_with_mixed_types(self):
        bloom = BloomFilter.build([1, 2.5, "three", None])
        assert 1 in bloom
        assert 2.5 in bloom
        assert "three" in bloom
        assert None in bloom

    def test_estimated_fpp_grows_with_fill(self):
        bloom = BloomFilter.for_capacity(100, fpp=0.01)
        early = bloom.estimated_fpp()
        for i in range(100):
            bloom.add(i)
        assert bloom.estimated_fpp() > early

    def test_size_scales_with_capacity(self):
        small = BloomFilter.for_capacity(100)
        large = BloomFilter.for_capacity(10_000)
        assert large.size_bytes() > small.size_bytes() * 50

    def test_invalid_parameters(self):
        with pytest.raises(StorageError):
            BloomFilter(0, 1)
        with pytest.raises(StorageError):
            BloomFilter.for_capacity(10, fpp=1.5)

    def test_deterministic_across_instances(self):
        a = BloomFilter(1024, 3)
        b = BloomFilter(1024, 3)
        a.add("hello")
        b.add("hello")
        assert a.might_contain("hello") and b.might_contain("hello")
        assert ("absent" in a) == ("absent" in b)

    def test_n_items_tracked(self):
        bloom = BloomFilter.for_capacity(10)
        bloom.add("x")
        bloom.add("y")
        assert bloom.n_items == 2
