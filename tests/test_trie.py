"""Nibble-trie dictionary tests — Section 3 "Optimize Global-Dictionaries"."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DictionaryError
from repro.storage.dictionary import SortedStringDictionary
from repro.storage.trie import TrieDictionary, _nibbles, _pack_nibbles


class TestNibbles:
    def test_ascii(self):
        assert _nibbles("A") == [0x4, 0x1]  # 'A' = 0x41

    def test_empty(self):
        assert _nibbles("") == []

    def test_utf8_multibyte(self):
        # 'é' = 0xC3 0xA9 in UTF-8
        assert _nibbles("é") == [0xC, 0x3, 0xA, 0x9]

    def test_pack_odd_count_pads(self):
        assert _pack_nibbles([0xA, 0xB, 0xC]) == bytes([0xAB, 0xC0])


class TestTrieDictionary:
    def test_basic_bijection(self):
        values = ["amazon", "cheap flights", "cheap tickets", "ebay"]
        trie = TrieDictionary.from_sorted(values)
        for index, value in enumerate(values):
            assert trie.value(index) == value
            assert trie.global_id(value) == index

    def test_misses(self):
        trie = TrieDictionary.from_sorted(["abc", "abd"])
        assert trie.global_id("ab") is None  # strict prefix
        assert trie.global_id("abcd") is None  # extension
        assert trie.global_id("abe") is None
        assert trie.global_id("") is None

    def test_empty_string_member(self):
        trie = TrieDictionary.from_sorted(["", "a"])
        assert trie.global_id("") == 0
        assert trie.value(0) == ""

    def test_prefix_members(self):
        # Shorter strings sort (and rank) before their extensions.
        values = ["a", "aa", "aaa", "ab"]
        trie = TrieDictionary.from_sorted(values)
        assert [trie.value(i) for i in range(4)] == values
        assert [trie.global_id(v) for v in values] == [0, 1, 2, 3]

    def test_unsorted_rejected(self):
        with pytest.raises(DictionaryError):
            TrieDictionary.from_sorted(["b", "a"])

    def test_duplicate_rejected(self):
        with pytest.raises(DictionaryError):
            TrieDictionary.from_sorted(["a", "a"])

    def test_from_values_sorts_and_dedupes(self):
        trie = TrieDictionary.from_values(["b", "a", "b", None])
        assert trie.has_null
        assert trie.value(1) == "a"

    def test_unicode(self):
        values = sorted(["köln", "käse", "日本", "日本語", "a"])
        trie = TrieDictionary.from_sorted(values)
        for index, value in enumerate(values):
            assert trie.value(index) == value
            assert trie.global_id(value) == index

    def test_shared_prefixes_compress(self):
        # The table_name effect: date-suffixed names share everything
        # but the tail, and the trie stores shared prefixes once.
        values = sorted(
            f"/analytics/logs/team{t:02d}/queries/2011-{m:02d}-{d:02d}"
            for t in range(8)
            for m in range(1, 13)
            for d in range(1, 28, 3)
        )
        trie = TrieDictionary.from_sorted(values)
        plain = SortedStringDictionary(values)
        assert trie.size_bytes() < plain.size_bytes() / 2

    def test_rank_lower_bound(self):
        values = ["apple", "banana", "cherry"]
        trie = TrieDictionary.from_sorted(values)
        assert trie.gid_range("<", "banana") == (0, 1)
        assert trie.gid_range("<=", "banana") == (0, 2)
        assert trie.gid_range(">", "apple") == (1, 3)
        assert trie.gid_range(">=", "b") == (1, 3)  # absent probe
        assert trie.gid_range("<", "a") == (0, 0)
        assert trie.gid_range(">", "zzz") == (3, 3)

    def test_rank_lower_bound_prefix_probes(self):
        values = ["ab", "abc", "ac"]
        trie = TrieDictionary.from_sorted(values)
        # "ab" itself is not strictly smaller than "ab".
        assert trie.gid_range(">=", "ab") == (0, 3)
        # probe inside a skip run
        assert trie.gid_range("<", "abb") == (0, 1)

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.text(min_size=0, max_size=12), min_size=1, max_size=60))
    def test_bijection_property(self, values):
        ordered = sorted(values)
        trie = TrieDictionary.from_sorted(ordered)
        for index, value in enumerate(ordered):
            assert trie.value(index) == value
            assert trie.global_id(value) == index

    @settings(max_examples=60, deadline=None)
    @given(
        st.sets(st.text(max_size=10), min_size=1, max_size=40),
        st.text(max_size=10),
    )
    def test_lower_bound_matches_sorted_scan(self, values, probe):
        import bisect

        ordered = sorted(values)
        trie = TrieDictionary.from_sorted(ordered)
        expected = bisect.bisect_left(ordered, probe)
        assert trie._rank_lower_bound(probe) == expected
