"""QueryLogCollector tests."""

import pytest

from repro.monitoring import QueryLogCollector, percentile
from repro.workload.queries import paper_queries


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.90) == 9.0
        assert percentile(values, 0.99) == 10.0


class TestCollector:
    def test_accumulates_fractions(self, log_store):
        collector = QueryLogCollector()
        queries = [
            "SELECT COUNT(*) FROM data WHERE country = 'FI'",
            "SELECT COUNT(*) FROM data WHERE country = 'US'",
            paper_queries()[0],
        ]
        for sql in queries:
            collector.record(log_store.execute(sql))
        assert collector.n_queries == 3
        total = (
            collector.skip_fraction
            + collector.cache_fraction
            + collector.scan_fraction
        )
        assert total == pytest.approx(1.0)
        assert collector.skip_fraction > 0

    def test_in_memory_share(self, log_store):
        collector = QueryLogCollector()
        result = log_store.execute(paper_queries()[0])
        collector.record(result, disk_bytes=0)
        collector.record(result, disk_bytes=1000)
        assert collector.in_memory_share == pytest.approx(0.5)
        assert collector.disk_bytes == 1000

    def test_latency_override(self, log_store):
        collector = QueryLogCollector()
        result = log_store.execute(paper_queries()[0])
        collector.record(result, latency_seconds=2.0)
        assert collector.latency_percentiles()["mean"] == pytest.approx(2.0)

    def test_report_contains_key_lines(self, log_store):
        collector = QueryLogCollector()
        collector.record(log_store.execute(paper_queries()[0]))
        text = collector.report()
        assert "skipped" in text
        assert "latency ms" in text
        assert "in-memory queries" in text

    def test_empty_collector_report(self):
        collector = QueryLogCollector()
        assert collector.skip_fraction == 0.0
        assert collector.in_memory_share == 0.0
        assert "queries: 0" in collector.report()
