"""QueryLogCollector tests."""

import pytest

from repro.monitoring import QueryLogCollector, percentile
from repro.workload.queries import paper_queries


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(values, 0.50) == 5.0
        assert percentile(values, 0.90) == 9.0
        assert percentile(values, 0.99) == 10.0


class TestCollector:
    def test_accumulates_fractions(self, log_store):
        collector = QueryLogCollector()
        queries = [
            "SELECT COUNT(*) FROM data WHERE country = 'FI'",
            "SELECT COUNT(*) FROM data WHERE country = 'US'",
            paper_queries()[0],
        ]
        for sql in queries:
            collector.record(log_store.execute(sql))
        assert collector.n_queries == 3
        total = (
            collector.skip_fraction
            + collector.cache_fraction
            + collector.scan_fraction
        )
        assert total == pytest.approx(1.0)
        assert collector.skip_fraction > 0

    def test_in_memory_share(self, log_store):
        collector = QueryLogCollector()
        result = log_store.execute(paper_queries()[0])
        collector.record(result, disk_bytes=0)
        collector.record(result, disk_bytes=1000)
        assert collector.in_memory_share == pytest.approx(0.5)
        assert collector.disk_bytes == 1000

    def test_latency_override(self, log_store):
        collector = QueryLogCollector()
        result = log_store.execute(paper_queries()[0])
        collector.record(result, latency_seconds=2.0)
        assert collector.latency_percentiles()["mean"] == pytest.approx(2.0)

    def test_report_contains_key_lines(self, log_store):
        collector = QueryLogCollector()
        collector.record(log_store.execute(paper_queries()[0]))
        text = collector.report()
        assert "skipped" in text
        assert "latency ms" in text
        assert "in-memory queries" in text

    def test_empty_collector_report(self):
        collector = QueryLogCollector()
        assert collector.skip_fraction == 0.0
        assert collector.in_memory_share == 0.0
        assert "queries: 0" in collector.report()


class TestCounterRegistryThreadSafety:
    def test_concurrent_increments_are_exact(self):
        # The pre-fix increment was an unlocked read-modify-write; under
        # contention (a tiny switch interval maximizes interleavings)
        # it dropped counts. The locked version must be exact.
        import sys
        import threading

        from repro.monitoring import CounterRegistry

        registry = CounterRegistry()
        n_threads, n_increments = 8, 5_000
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [
                threading.Thread(
                    target=lambda: [
                        registry.increment("hammered")
                        for __ in range(n_increments)
                    ]
                )
                for __ in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)
        finally:
            sys.setswitchinterval(old_interval)
        assert registry.get("hammered") == n_threads * n_increments
        assert registry.snapshot()["hammered"] == n_threads * n_increments

    def test_reset_clears(self):
        from repro.monitoring import CounterRegistry

        registry = CounterRegistry()
        registry.increment("x", 3)
        registry.reset()
        assert registry.get("x") == 0
        assert registry.snapshot() == {}


class TestReservoirAndWindow:
    def test_reservoir_is_bounded(self, log_store):
        collector = QueryLogCollector(reservoir_capacity=64)
        result = log_store.execute(paper_queries()[0])
        for i in range(1_000):
            collector.record(result, latency_seconds=float(i + 1))
        assert collector.n_queries == 1_000
        assert len(collector._latencies) == 64
        # The sample stays representative: all-time percentiles remain
        # inside the observed range.
        stats = collector.latency_percentiles()
        assert 1.0 <= stats["p50"] <= 1_000.0

    def test_exact_below_capacity(self, log_store):
        collector = QueryLogCollector(reservoir_capacity=64)
        result = log_store.execute(paper_queries()[0])
        for i in range(10):
            collector.record(result, latency_seconds=float(i + 1))
        assert sorted(collector._latencies) == [
            float(i + 1) for i in range(10)
        ]

    def test_windowed_percentiles_see_only_recent(self, log_store):
        collector = QueryLogCollector(window_capacity=4)
        result = log_store.execute(paper_queries()[0])
        for i in range(10):
            collector.record(result, latency_seconds=float(i + 1))
        windowed = collector.windowed_percentiles()
        # Window holds the last 4 latencies: 7, 8, 9, 10.
        assert windowed["window"] == 4
        assert windowed["p50"] == 8.0
        assert windowed["p95"] == 10.0
        assert windowed["p99"] == 10.0
        # The all-time view still reflects everything recorded.
        assert collector.latency_percentiles()["p50"] == 5.0

    def test_empty_window(self):
        collector = QueryLogCollector()
        assert collector.windowed_percentiles() == {
            "window": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "p99": 0.0,
        }

    def test_capacity_validation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            QueryLogCollector(reservoir_capacity=0)
        with pytest.raises(ReproError):
            QueryLogCollector(window_capacity=0)
