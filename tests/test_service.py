"""Serving-layer tests: semantic cache, fair scheduler, QueryService.

The soundness arguments the serving layer leans on are proved at the
engine level (``candidate_chunks`` pruning is bit-identical; see
test_datastore/test_plan); here we test the layer itself: cache reuse
paths, admission and shedding, smooth-WRR fairness (as a hypothesis
property), shutdown semantics, and the poisoned-tenant isolation
guarantee under the supervised process executor.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.plan import query_fingerprint, where_conjuncts
from repro.distributed import ClusterConfig, SimulatedCluster
from repro.errors import ServiceError
from repro.monitoring import percentile
from repro.service import (
    FairScheduler,
    FootprintIndex,
    QueryCompleted,
    QueryFailed,
    QueryRejected,
    QueryService,
    SemanticResultCache,
    ServiceConfig,
    estimate_result_weight,
    live_services,
)
from repro.sql.parser import parse_query

PARENT_SQL = (
    "SELECT country, COUNT(*) as c FROM data "
    "WHERE latency > 100 GROUP BY country ORDER BY c DESC LIMIT 10;"
)
CHILD_SQL = (
    "SELECT country, COUNT(*) as c FROM data "
    "WHERE latency > 100 AND country IN ('FI', 'US') "
    "GROUP BY country ORDER BY c DESC LIMIT 10;"
)


def _keys(sql: str) -> tuple[str, frozenset]:
    query = parse_query(sql)
    return query_fingerprint(query), frozenset(where_conjuncts(query))


# -- semantic result cache ------------------------------------------------------


class TestFootprintIndex:
    def test_exact_and_subset_lookup(self):
        index = FootprintIndex(max_entries=8)
        index.record(frozenset({"a"}), (0, 1, 2, 3))
        assert index.lookup(frozenset({"a"})) == (0, 1, 2, 3)
        # A refinement (superset of conjuncts) is covered by the parent.
        assert index.lookup(frozenset({"a", "b"})) == (0, 1, 2, 3)
        # An unrelated conjunct set is not.
        assert index.lookup(frozenset({"c"})) is None

    def test_smallest_covering_footprint_wins(self):
        index = FootprintIndex(max_entries=8)
        index.record(frozenset(), (0, 1, 2, 3, 4))
        index.record(frozenset({"a"}), (1, 2))
        assert index.lookup(frozenset({"a", "b"})) == (1, 2)

    def test_re_record_keeps_tighter_footprint(self):
        # A pruned re-execution reports a subset footprint; recording
        # the parent again afterwards must not widen it back.
        index = FootprintIndex(max_entries=8)
        index.record(frozenset({"a"}), (1, 2))
        index.record(frozenset({"a"}), (1, 2, 3, 4))
        assert index.lookup(frozenset({"a"})) == (1, 2)

    def test_bounded(self):
        index = FootprintIndex(max_entries=3)
        for i in range(10):
            index.record(frozenset({f"c{i}"}), (i,))
        assert len(index) == 3

    def test_rejects_bad_capacity(self):
        with pytest.raises(ServiceError):
            FootprintIndex(max_entries=0)


class TestSemanticResultCache:
    def test_miss_admit_hit(self, log_store):
        cache = SemanticResultCache(capacity_bytes=1 << 20)
        fingerprint, conjuncts = _keys(PARENT_SQL)
        assert cache.lookup(fingerprint, conjuncts) == (None, None)
        result = log_store.execute(PARENT_SQL)
        cache.admit(fingerprint, conjuncts, result)
        cached, footprint = cache.lookup(fingerprint, conjuncts)
        assert cached is result
        assert footprint is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_subsumption_footprint_for_refinement(self, log_store):
        cache = SemanticResultCache(capacity_bytes=1 << 20)
        parent_fp, parent_conj = _keys(PARENT_SQL)
        parent = log_store.execute(PARENT_SQL)
        cache.admit(parent_fp, parent_conj, parent)
        child_fp, child_conj = _keys(CHILD_SQL)
        assert parent_conj < child_conj  # a genuine refinement
        cached, footprint = cache.lookup(child_fp, child_conj)
        assert cached is None
        assert footprint == tuple(parent.stats.active_chunks)

    def test_session_lineage_preferred(self, log_store):
        cache = SemanticResultCache(capacity_bytes=1 << 20)
        parent_fp, parent_conj = _keys(PARENT_SQL)
        parent = log_store.execute(PARENT_SQL)
        cache.admit(parent_fp, parent_conj, parent, session="s1")
        child_fp, child_conj = _keys(CHILD_SQL)
        __, via_session = cache.lookup(child_fp, child_conj, session="s1")
        __, via_global = cache.lookup(child_fp, child_conj, session="other")
        assert via_session == via_global == tuple(parent.stats.active_chunks)

    def test_incomplete_results_never_admitted(self, log_store):
        from dataclasses import replace

        cache = SemanticResultCache(capacity_bytes=1 << 20)
        fingerprint, conjuncts = _keys(PARENT_SQL)
        result = log_store.execute(PARENT_SQL)
        degraded = replace(
            result,
            stats=replace(result.stats, rows_unserved=5),
            complete=False,
            row_coverage=0.9,
        )
        assert not degraded.complete
        cache.admit(fingerprint, conjuncts, degraded)
        assert cache.lookup(fingerprint, conjuncts) == (None, None)

    def test_byte_weighted_eviction(self, log_store):
        result = log_store.execute(PARENT_SQL)
        weight = estimate_result_weight(result)
        cache = SemanticResultCache(capacity_bytes=weight * 2.5)
        for i in range(8):
            fingerprint, conjuncts = _keys(
                PARENT_SQL.replace("100", str(100 + i))
            )
            cache.admit(fingerprint, conjuncts, result)
        stats = cache.stats()
        assert stats["entries"] <= 2
        assert stats["evictions"] > 0
        assert stats["used_bytes"] <= weight * 2.5

    def test_concurrent_probes_consistent(self, log_store):
        cache = SemanticResultCache(capacity_bytes=1 << 20)
        result = log_store.execute(PARENT_SQL)
        variants = [
            _keys(PARENT_SQL.replace("100", str(100 + i))) for i in range(4)
        ]
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for step in range(200):
                    fingerprint, conjuncts = variants[(seed + step) % 4]
                    cache.lookup(fingerprint, conjuncts, session=seed)
                    cache.admit(fingerprint, conjuncts, result, session=seed)
            except BaseException as exc:  # propagated to the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors
        stats = cache.stats()
        probes = stats["hits"] + stats["subsumption_probes"] + stats["misses"]
        assert probes == 6 * 200


# -- fair scheduler -------------------------------------------------------------


class TestFairScheduler:
    def test_offer_sheds_at_depth(self):
        scheduler = FairScheduler(queue_depth=2)
        assert scheduler.offer("t", 1)
        assert scheduler.offer("t", 2)
        assert not scheduler.offer("t", 3)
        assert scheduler.backlog() == 2

    def test_take_empty_times_out(self):
        scheduler = FairScheduler()
        assert scheduler.take(0.01) is None

    def test_inflight_cap_blocks_tenant(self):
        scheduler = FairScheduler(queue_depth=8, max_inflight_per_tenant=1)
        scheduler.offer("t", 1)
        scheduler.offer("t", 2)
        assert scheduler.take(0.0) == ("t", 1)
        # The tenant is at its cap: nothing is eligible.
        assert scheduler.take(0.0) is None
        scheduler.complete("t")
        assert scheduler.take(0.0) == ("t", 2)

    def test_unmatched_complete_raises(self):
        scheduler = FairScheduler()
        with pytest.raises(ServiceError):
            scheduler.complete("nobody")

    def test_close_sheds_new_offers_and_drains(self):
        scheduler = FairScheduler()
        scheduler.offer("a", 1)
        scheduler.offer("b", 2)
        scheduler.close()
        assert not scheduler.offer("a", 3)
        assert list(scheduler.drain()) == [("a", 1), ("b", 2)]
        assert scheduler.backlog() == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ServiceError):
            FairScheduler(queue_depth=0)
        with pytest.raises(ServiceError):
            FairScheduler(max_inflight_per_tenant=0)
        with pytest.raises(ServiceError):
            FairScheduler().set_weight("t", 0)

    @given(
        weights=st.lists(st.integers(1, 8), min_size=1, max_size=6),
        rounds=st.integers(1, 4),
    )
    @settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_smooth_wrr_fairness_property(self, weights, rounds):
        """Backlogged tenants are served proportionally to weight.

        Smooth WRR's guarantees, checked exactly: over any full cycle
        of ``sum(weights)`` picks each tenant is picked exactly
        ``weight`` times, and in *every prefix* tenant ``t``'s share
        deviates from ``n * w_t / W`` by less than 2 (empirically the
        scheme stays within ~1.04; 2 leaves margin without weakening
        the starvation bound the service relies on).
        """
        total_weight = sum(weights)
        total_picks = total_weight * rounds
        scheduler = FairScheduler(
            queue_depth=total_picks,
            max_inflight_per_tenant=total_picks + 1,
        )
        names = [f"t{i}" for i in range(len(weights))]
        for name, weight in zip(names, weights):
            scheduler.set_weight(name, weight)
            for item in range(weight * rounds):
                assert scheduler.offer(name, item)
        counts = dict.fromkeys(names, 0)
        for picked_so_far in range(1, total_picks + 1):
            picked = scheduler.take(0.0)
            assert picked is not None
            counts[picked[0]] += 1
            for name, weight in zip(names, weights):
                expected = picked_so_far * weight / total_weight
                assert abs(counts[name] - expected) < 2.0
        for name, weight in zip(names, weights):
            assert counts[name] == weight * rounds


# -- the service end to end -----------------------------------------------------


@pytest.fixture(scope="module")
def serve_store(log_table) -> DataStore:
    return DataStore.from_table(
        log_table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=200,
            reorder_rows=True,
        ),
    )


class _BlockingBackend:
    """A cluster-shaped backend whose execute() waits for a release."""

    def __init__(self, store: DataStore) -> None:
        self.store = store
        self.started = threading.Event()
        self.release = threading.Event()

    def execute(self, query):
        self.started.set()
        if not self.release.wait(30.0):
            raise ServiceError("blocking backend was never released")
        return self.store.execute(query), None


class TestQueryService:
    def test_cache_paths_and_bit_identity(self, serve_store):
        with QueryService(serve_store, ServiceConfig(workers=2)) as service:
            miss = service.run("acme", PARENT_SQL, session="s1")
            hit = service.run("acme", PARENT_SQL, session="s1")
            refined = service.run("acme", CHILD_SQL, session="s1")
        assert isinstance(miss, QueryCompleted) and miss.cache_path == "miss"
        assert isinstance(hit, QueryCompleted) and hit.cache_path == "hit"
        assert isinstance(refined, QueryCompleted)
        assert refined.cache_path == "subsumption"
        # Served answers are content-identical to direct execution.
        assert miss.result.content_equal(serve_store.execute(PARENT_SQL))
        assert refined.result.content_equal(serve_store.execute(CHILD_SQL))
        # The subsumed rescan really pruned: it visited no chunk
        # outside the parent's footprint.
        assert set(refined.result.stats.active_chunks) <= set(
            miss.result.stats.active_chunks
        )

    def test_admission_sheds_exactly_beyond_depth(self, serve_store):
        backend = _BlockingBackend(serve_store)
        config = ServiceConfig(
            workers=1, queue_depth=2, max_inflight_per_tenant=1
        )
        with QueryService(backend, config) as service:
            # One query occupies the (blocked) engine; queue_depth more
            # sit in the tenant queue; everything past that is shed.
            first = service.submit("acme", PARENT_SQL)
            assert backend.started.wait(10.0)  # now in-flight, blocked
            tickets = [first] + [
                service.submit("acme", PARENT_SQL) for __ in range(5)
            ]
            shed = [t for t in tickets if t.done()]
            assert len(shed) == 3
            for ticket in shed:
                outcome = ticket.outcome(1.0)
                assert isinstance(outcome, QueryRejected)
                assert outcome.reason == "tenant queue full"
            backend.release.set()
            served = [
                t.outcome(30.0) for t in tickets if t not in shed
            ]
            assert all(isinstance(o, QueryCompleted) for o in served)
        counts = service.stats()["counts"]
        assert counts["submitted"] == 6
        assert counts["completed"] == 3
        assert counts["rejected"] == 3

    def test_engine_error_becomes_query_failed(self, serve_store):
        with QueryService(serve_store) as service:
            outcome = service.run("acme", "SELECT nosuch FROM data")
        assert isinstance(outcome, QueryFailed)
        assert "nosuch" in outcome.error

    def test_close_rejects_backlog_and_stops_threads(self, serve_store):
        backend = _BlockingBackend(serve_store)
        config = ServiceConfig(
            workers=1, queue_depth=4, max_inflight_per_tenant=1
        )
        service = QueryService(backend, config)
        tickets = [service.submit("acme", PARENT_SQL) for __ in range(3)]
        backend.release.set()  # let the in-flight query finish
        service.close()
        outcomes = [ticket.outcome(5.0) for ticket in tickets]
        rejected = [o for o in outcomes if isinstance(o, QueryRejected)]
        assert all(o.reason == "service shutdown" for o in rejected)
        assert len(rejected) == sum(
            1 for o in outcomes if not isinstance(o, QueryCompleted)
        )
        assert not any(t.is_alive() for t in service.worker_threads())
        assert service not in live_services()
        service.close()  # idempotent
        with pytest.raises(ServiceError):
            service.submit("acme", PARENT_SQL)

    def test_result_cache_can_be_disabled(self, serve_store):
        config = ServiceConfig(enable_result_cache=False)
        with QueryService(serve_store, config) as service:
            first = service.run("acme", PARENT_SQL)
            second = service.run("acme", PARENT_SQL)
            assert "cache" not in service.stats()
        assert first.cache_path == second.cache_path == "miss"

    def test_stats_shape(self, serve_store):
        with QueryService(serve_store) as service:
            service.run("acme", PARENT_SQL)
            snapshot = service.stats()
        assert snapshot["counts"]["completed"] == 1
        assert snapshot["latency"]["p50"] > 0
        assert snapshot["windowed_latency"]["window"] == 1
        assert snapshot["backlog"] == 0
        assert snapshot["cache"]["misses"] == 1

    def test_config_validation(self):
        for bad in (
            dict(workers=0),
            dict(queue_depth=0),
            dict(max_inflight_per_tenant=0),
            dict(default_weight=0),
            dict(cache_capacity_bytes=0),
            dict(dispatch_poll_seconds=0),
            dict(shutdown_timeout_seconds=0),
        ):
            with pytest.raises(ServiceError):
                ServiceConfig(**bad)

    def test_serving_over_simulated_cluster(self, log_table):
        cluster = SimulatedCluster.build(
            log_table,
            n_shards=3,
            store_options=DataStoreOptions(
                partition_fields=("country", "table_name"),
                max_chunk_rows=300,
                reorder_rows=True,
            ),
            config=ClusterConfig(n_machines=4, seed=11),
        )
        try:
            direct, __ = cluster.execute(PARENT_SQL)
            with QueryService(cluster, ServiceConfig(workers=2)) as service:
                miss = service.run("acme", PARENT_SQL)
                hit = service.run("acme", PARENT_SQL)
            assert miss.cache_path == "miss"
            # Exact canonical-plan reuse works over the cluster; the
            # subsumption path (store-only) must never engage.
            assert hit.cache_path == "hit"
            assert miss.result.content_equal(direct)
        finally:
            cluster.close()


class TestPoisonedTenantFairness:
    """One hot-looping heavy tenant cannot starve a well-behaved one.

    The isolation argument: the poisoner's flood lands in its *own*
    bounded queue (excess is shed at admission), WRR alternates picks
    between the two tenants, and the in-flight cap keeps the poisoner
    from occupying every engine slot — so a victim query waits behind
    at most a bounded number of heavy queries, and its p95 is bounded
    by its solo baseline plus that queueing term. Run under the
    supervised process executor, the strategy production serving uses.
    """

    HEAVY_SQL = (
        "SELECT table_name, COUNT(*) as c, SUM(latency) as s FROM data "
        "GROUP BY table_name ORDER BY c DESC LIMIT 50;"
    )
    LIGHT_SQL = (
        "SELECT country, COUNT(*) as c FROM data "
        "WHERE country IN ('FI', 'US') GROUP BY country "
        "ORDER BY c DESC LIMIT 5;"
    )
    VICTIM_QUERIES = 8

    def _victim_latencies(self, service) -> list[float]:
        latencies = []
        for __ in range(self.VICTIM_QUERIES):
            outcome = service.run("victim", self.LIGHT_SQL, timeout=120.0)
            assert isinstance(outcome, QueryCompleted)
            latencies.append(outcome.total_seconds)
        return sorted(latencies)

    def test_victim_p95_bounded_under_attack(self, log_table):
        store = DataStore.from_table(
            log_table,
            DataStoreOptions(
                partition_fields=("country", "table_name"),
                max_chunk_rows=500,
                reorder_rows=True,
                executor="process",
            ),
        )
        # The cache would absorb the poison (identical heavy queries
        # become hits); disable it so every query pays the engine.
        config = ServiceConfig(
            workers=2,
            queue_depth=4,
            max_inflight_per_tenant=1,
            enable_result_cache=False,
        )
        try:
            with QueryService(store, config) as service:
                solo = self._victim_latencies(service)
                heavy_solo = [
                    service.run(
                        "poisoner", self.HEAVY_SQL, timeout=120.0
                    ).total_seconds
                    for __ in range(3)
                ]
                stop = threading.Event()

                def poison() -> None:
                    while not stop.is_set():
                        # Fire-and-forget flood; most offers are shed
                        # at admission (queue_depth=4), which is the
                        # mechanism under test.
                        service.submit("poisoner", self.HEAVY_SQL)

                attacker = threading.Thread(target=poison, daemon=True)
                attacker.start()
                try:
                    attacked = self._victim_latencies(service)
                finally:
                    stop.set()
                    attacker.join(30.0)
                counts = service.stats()["counts"]
        finally:
            store.executor.close()
        # The flood was actually shed (the poisoner really flooded).
        assert counts["rejected"] > 0
        # Fairness bound: a victim query waits behind at most the
        # engine's in-flight heavy work plus one WRR turn. Allow 3
        # heavy-query terms of slack on top of the solo baseline
        # (generous for CI noise on a 1-CPU box, but still a *bound*:
        # an unfair scheduler would queue the victim behind the
        # poisoner's whole backlog, growing without limit).
        solo_p95 = percentile(solo, 0.95)
        attacked_p95 = percentile(attacked, 0.95)
        heavy_term = max(heavy_solo)
        assert attacked_p95 <= 3.0 * solo_p95 + 3.0 * heavy_term + 0.5, (
            solo_p95,
            attacked_p95,
            heavy_term,
        )
