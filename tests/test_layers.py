"""Hybrid two-layer store tests — Section 3's uncompressed/compressed layers."""

import pytest

from repro.errors import StorageError
from repro.storage.layers import HybridLayerStore


def test_hot_hit():
    store = HybridLayerStore(1000, 1000)
    store.put("k", b"payload")
    assert store.get("k") == b"payload"
    assert store.stats.hot_hits == 1


def test_overflow_demotes_to_cold_compressed():
    store = HybridLayerStore(100, 10_000)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)  # "a" demoted
    assert not store.contains_hot("a")
    assert store.contains_cold("a")
    # Cold copy is compressed: a run of 80 bytes shrinks a lot.
    assert store.cold_used_bytes < 40


def test_cold_hit_decompresses_and_promotes():
    store = HybridLayerStore(100, 10_000)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)
    data = store.get("a")
    assert data == b"A" * 80
    assert store.stats.cold_hits == 1
    assert store.contains_hot("a")
    assert not store.contains_cold("a")


def test_loader_fallback_counts_disk_bytes():
    blobs = {"x": b"x" * 50}
    store = HybridLayerStore(1000, 1000, loader=blobs.__getitem__)
    assert store.get("x") == b"x" * 50
    assert store.stats.loads == 1
    assert store.stats.bytes_loaded == 50
    # Second read is a hot hit.
    store.get("x")
    assert store.stats.hot_hits == 1


def test_missing_without_loader_raises():
    store = HybridLayerStore(100, 100)
    with pytest.raises(StorageError):
        store.get("nope")


def test_cold_overflow_drops():
    # Cold layer keeps at least one entry; a second oversized demotion
    # forces a drop.
    store = HybridLayerStore(100, 60)
    import os

    for key in ("a", "b", "c"):
        store.put(key, os.urandom(90))
    assert store.stats.demotions >= 2
    assert store.stats.drops >= 1


def test_in_memory_rate():
    store = HybridLayerStore(1000, 1000, loader=lambda k: b"L")
    store.put("a", b"data")
    store.get("a")
    store.get("new")  # loader
    assert store.stats.in_memory_rate == pytest.approx(0.5)


def test_put_replaces_cold_copy():
    store = HybridLayerStore(100, 1000)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)  # a -> cold
    store.put("a", b"fresh")  # back to hot; cold copy must not resurface
    assert store.get("a") == b"fresh"
