"""Hybrid two-layer store tests — Section 3's uncompressed/compressed layers."""

import pytest

from repro.errors import StorageError
from repro.storage.layers import HybridLayerStore


def test_hot_hit():
    store = HybridLayerStore(1000, 1000)
    store.put("k", b"payload")
    assert store.get("k") == b"payload"
    assert store.stats.hot_hits == 1


def test_overflow_demotes_to_cold_compressed():
    store = HybridLayerStore(100, 10_000)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)  # "a" demoted
    assert not store.contains_hot("a")
    assert store.contains_cold("a")
    # Cold copy is compressed: a run of 80 bytes shrinks a lot.
    assert store.cold_used_bytes < 40


def test_cold_hit_decompresses_and_promotes():
    store = HybridLayerStore(100, 10_000)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)
    data = store.get("a")
    assert data == b"A" * 80
    assert store.stats.cold_hits == 1
    assert store.contains_hot("a")
    assert not store.contains_cold("a")


def test_loader_fallback_counts_disk_bytes():
    blobs = {"x": b"x" * 50}
    store = HybridLayerStore(1000, 1000, loader=blobs.__getitem__)
    assert store.get("x") == b"x" * 50
    assert store.stats.loads == 1
    assert store.stats.bytes_loaded == 50
    # Second read is a hot hit.
    store.get("x")
    assert store.stats.hot_hits == 1


def test_missing_without_loader_raises():
    store = HybridLayerStore(100, 100)
    with pytest.raises(StorageError):
        store.get("nope")


def test_cold_overflow_drops():
    # Cold layer keeps at least one entry; a second oversized demotion
    # forces a drop.
    store = HybridLayerStore(100, 60)
    import os

    for key in ("a", "b", "c"):
        store.put(key, os.urandom(90))
    assert store.stats.demotions >= 2
    assert store.stats.drops >= 1


def test_in_memory_rate():
    store = HybridLayerStore(1000, 1000, loader=lambda k: b"L")
    store.put("a", b"data")
    store.get("a")
    store.get("new")  # loader
    assert store.stats.in_memory_rate == pytest.approx(0.5)


def test_put_replaces_cold_copy():
    store = HybridLayerStore(100, 1000)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)  # a -> cold
    store.put("a", b"fresh")  # back to hot; cold copy must not resurface
    assert store.get("a") == b"fresh"


def test_oversized_blob_never_admitted_hot():
    # A blob that alone overflows the hot budget must not stay
    # resident (it would be unevictable and permanently over budget);
    # it demotes straight to cold.
    store = HybridLayerStore(100, 10_000)
    store.put("big", b"G" * 150)
    assert not store.contains_hot("big")
    assert store.contains_cold("big")
    assert store.hot_used_bytes == 0
    assert store.stats.oversized_rejections == 1
    assert store.stats.demotions == 1
    # Still readable: the cold copy decompresses on access...
    assert store.get("big") == b"G" * 150
    # ...and the promotion is itself rejected by the hot layer again.
    assert not store.contains_hot("big")
    assert store.stats.oversized_rejections == 2


def test_oversized_blob_never_admitted_cold():
    import os

    # Incompressible and bigger than both layers: rejected by hot,
    # then its compressed form is rejected by cold and dropped.
    store = HybridLayerStore(50, 60, loader=lambda k: b"")
    blob = os.urandom(200)
    store.put("big", blob)
    assert not store.contains_hot("big")
    assert not store.contains_cold("big")
    assert store.stats.oversized_rejections == 2
    assert store.stats.drops == 1
    assert store.hot_used_bytes == 0
    assert store.cold_used_bytes == 0


def test_compression_ratio_and_bytes_compressed():
    store = HybridLayerStore(100, 10_000)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)  # demotes "a": 80 raw bytes compressed
    assert store.stats.bytes_compressed == 80
    assert 0 < store.stats.bytes_compressed_out < 80
    assert store.stats.compression_ratio == pytest.approx(
        80 / store.stats.bytes_compressed_out
    )
    # No demotions yet -> ratio is defined as 0.0, not a ZeroDivision.
    assert HybridLayerStore(10, 10).stats.compression_ratio == 0.0


def test_layer_counters_mirror_monitoring():
    from repro.monitoring import counters

    counters.reset()
    store = HybridLayerStore(100, 10_000, loader=lambda k: b"L" * 30)
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)  # demote "a"
    store.get("a")  # cold hit
    store.get("disk")  # loader
    store.put("big", b"X" * 500)  # oversized: rejected hot, demoted
    snapshot = counters.snapshot()
    assert snapshot["storage.layers.demotions"] == store.stats.demotions
    assert snapshot["storage.layers.cold_hits"] == 1
    assert snapshot["storage.layers.loads"] == 1
    assert snapshot["storage.layers.bytes_loaded"] == 30
    assert snapshot["storage.layers.oversized_rejections"] == 1
    assert (
        snapshot["storage.layers.bytes_compressed"]
        == store.stats.bytes_compressed
    )


def test_codec_stats_accessor():
    store = HybridLayerStore(100, 10_000, codec="zippy")
    assert store.codec_stats() == {}  # nothing demoted yet
    store.put("a", b"A" * 80)
    store.put("b", b"B" * 80)  # demotion compresses through the codec
    stats = store.codec_stats()["zippy"]
    assert stats.encode_calls == 1
    assert stats.encode_bytes_in == 80


def test_codec_stats_are_per_instance():
    # Two stores with the same codec must never alias counters — the
    # second store's traffic is invisible to the first (PR 9 fix).
    first = HybridLayerStore(100, 10_000, codec="zippy")
    second = HybridLayerStore(100, 10_000, codec="zippy")
    first.put("a", b"A" * 80)
    first.put("b", b"B" * 80)  # demotes "a" through first's codec
    assert second.codec_stats() == {}
    second.put("c", b"C" * 80)
    second.put("d", b"D" * 80)
    assert first.codec_stats()["zippy"].encode_calls == 1
    assert second.codec_stats()["zippy"].encode_calls == 1


def test_auto_codec_picks_per_blob_class():
    store = HybridLayerStore(100, 10_000, codec="auto")
    store.put("chunk:0", b"A" * 80)
    store.put("chunk:1", b"B" * 80)  # demotes chunk:0 via the advisor
    classes = store.blob_class_codecs()
    assert "chunk" in classes
    assert store.get("chunk:0") == b"A" * 80  # round-trips via cold
