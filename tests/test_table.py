"""Table / Schema / Column tests."""

import numpy as np
import pytest

from repro.core.table import Column, DataType, Schema, Table
from repro.errors import TableError


class TestDataType:
    def test_infer_string(self):
        assert DataType.infer(["a", None]) is DataType.STRING

    def test_infer_int(self):
        assert DataType.infer([1, 2, None]) is DataType.INT

    def test_infer_float_promotes_int(self):
        assert DataType.infer([1, 2.5]) is DataType.FLOAT

    def test_infer_empty_defaults_int(self):
        assert DataType.infer([]) is DataType.INT

    def test_infer_mixed_rejected(self):
        with pytest.raises(TableError):
            DataType.infer(["a", 1])

    def test_infer_bool_rejected(self):
        with pytest.raises(TableError):
            DataType.infer([True])

    def test_validate(self):
        DataType.STRING.validate("x")
        DataType.STRING.validate(None)
        with pytest.raises(TableError):
            DataType.STRING.validate(3)
        with pytest.raises(TableError):
            DataType.INT.validate(True)
        DataType.FLOAT.validate(3)  # ints fit float columns


class TestSchema:
    def test_lookup(self):
        schema = Schema([("a", DataType.INT), ("b", DataType.STRING)])
        assert schema.dtype("b") is DataType.STRING
        assert "a" in schema
        assert "c" not in schema
        assert schema.field_names == ["a", "b"]

    def test_unknown_field(self):
        schema = Schema([("a", DataType.INT)])
        with pytest.raises(TableError):
            schema.dtype("z")

    def test_duplicate_names_rejected(self):
        with pytest.raises(TableError):
            Schema([("a", DataType.INT), ("a", DataType.INT)])

    def test_equality(self):
        a = Schema([("x", DataType.INT)])
        b = Schema([("x", DataType.INT)])
        assert a == b


class TestTable:
    def _table(self) -> Table:
        return Table.from_columns({"s": ["a", "b", "c"], "n": [3, 1, 2]})

    def test_shape(self):
        table = self._table()
        assert table.n_rows == 3
        assert table.n_columns == 2
        assert table.n_cells == 6
        assert table.field_names == ["s", "n"]

    def test_row_access(self):
        table = self._table()
        assert table.row(1) == ("b", 1)
        with pytest.raises(TableError):
            table.row(3)

    def test_iter_rows(self):
        assert list(self._table().iter_rows()) == [("a", 3), ("b", 1), ("c", 2)]

    def test_take_reorders(self):
        table = self._table().take(np.array([2, 0, 1]))
        assert list(table.iter_rows()) == [("c", 2), ("a", 3), ("b", 1)]

    def test_ragged_rejected(self):
        with pytest.raises(TableError):
            Table([Column("a", [1]), Column("b", [1, 2])])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(TableError):
            Table([Column("a", [1]), Column("a", [2])])

    def test_from_rows(self):
        schema = Schema([("s", DataType.STRING), ("n", DataType.INT)])
        table = Table.from_rows([("a", 1), ("b", 2)], schema)
        assert table.column("s").values == ["a", "b"]

    def test_from_rows_width_mismatch(self):
        schema = Schema([("s", DataType.STRING)])
        with pytest.raises(TableError):
            Table.from_rows([("a", 1)], schema)

    def test_with_column(self):
        table = self._table().with_column(Column("z", [9, 8, 7]))
        assert table.field_names == ["s", "n", "z"]
        with pytest.raises(TableError):
            table.with_column(Column("z", [0, 0, 0]))

    def test_select_columns(self):
        table = self._table().select_columns(["n"])
        assert table.field_names == ["n"]

    def test_equality(self):
        assert self._table() == self._table()
        assert self._table() != self._table().take([0, 2, 1])

    def test_sorted_rows_handles_nulls(self):
        table = Table.from_columns({"s": ["b", None, "a"]})
        assert table.sorted_rows() == [(None,), ("a",), ("b",)]

    def test_unknown_column(self):
        with pytest.raises(TableError):
            self._table().column("zz")

    def test_empty_table_rejected(self):
        with pytest.raises(TableError):
            Table([])
