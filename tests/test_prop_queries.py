"""Property test: randomly generated queries agree across backends.

Hypothesis builds arbitrary queries from the supported dialect and
checks that the partitioned column-store (with skipping, virtual-field
materialization and result caching all active) returns exactly what the
reference row executor returns on the raw table.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import Table
from repro.formats.rowexec import execute_on_rows
from repro.sql.parser import parse_query
from repro.testing import assert_results_equal
from repro.workload.generator import LogsConfig, generate_query_logs

_TABLE = generate_query_logs(
    LogsConfig(n_rows=800, n_days=12, n_teams=5, seed=31, null_latency_fraction=0.05)
)
_STORE = DataStore.from_table(
    _TABLE,
    DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=60,
        reorder_rows=True,
    ),
)

_COUNTRIES = sorted(set(_TABLE.column("country").values))[:6]
_GROUPS = ["country", "user_name", "date(timestamp)", "month(timestamp)"]
_METRICS = [
    "COUNT(*)",
    "COUNT(latency)",
    "SUM(latency)",
    "MIN(latency)",
    "MAX(latency)",
    "AVG(latency)",
    "COUNT(DISTINCT table_name)",
    "APPROX_COUNT_DISTINCT(user_name, 64)",
    "MIN(table_name)",
]


def _quoted(values):
    return ", ".join(f"'{v}'" for v in values)


_predicates = st.one_of(
    st.sampled_from(
        [
            "latency > 200",
            "latency <= 150",
            "latency IS NULL",
            "latency IS NOT NULL",
            "contains(table_name, 'team0') = 1",
            "date(timestamp) >= '2011-10-05'",
            "latency BETWEEN 50 AND 400",
            "latency NOT BETWEEN 10 AND 5000",
            "table_name LIKE '%dataset0_%'",
            "user_name NOT LIKE 'user00%'",
        ]
    ),
    st.lists(st.sampled_from(_COUNTRIES), min_size=1, max_size=3).map(
        lambda cs: f"country IN ({_quoted(sorted(set(cs)))})"
    ),
    st.sampled_from(_COUNTRIES).map(lambda c: f"country = '{c}'"),
    st.sampled_from(_COUNTRIES).map(lambda c: f"NOT country = '{c}'"),
)


@st.composite
def _where_clause(draw) -> str:
    n = draw(st.integers(min_value=0, max_value=3))
    if n == 0:
        return ""
    parts = [draw(_predicates) for __ in range(n)]
    joiners = [draw(st.sampled_from([" AND ", " OR "])) for __ in range(n - 1)]
    clause = parts[0]
    for joiner, part in zip(joiners, parts[1:]):
        clause = f"({clause}{joiner}{part})"
    return f" WHERE {clause}"


@st.composite
def _group_query(draw) -> str:
    group = draw(st.sampled_from(_GROUPS + [None]))
    metric = draw(st.sampled_from(_METRICS))
    where = draw(_where_clause())
    limit = draw(st.integers(min_value=1, max_value=15))
    direction = draw(st.sampled_from(["ASC", "DESC"]))
    if group is None:
        return f"SELECT {metric} as m FROM data{where}"
    return (
        f"SELECT {group} as g, {metric} as m FROM data{where} "
        f"GROUP BY g ORDER BY m {direction} LIMIT {limit}"
    )


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_group_query())
def test_random_queries_match_reference(sql):
    parsed = parse_query(sql)
    expected = execute_on_rows(parsed, _TABLE.schema, _TABLE.iter_rows())
    got = _STORE.execute(parsed)
    assert_results_equal(
        got.rows(), list(expected.iter_rows()), context=sql
    )


@settings(max_examples=40, deadline=None)
@given(_where_clause())
def test_random_filters_count_matches(where):
    sql = f"SELECT COUNT(*) FROM data{where}"
    parsed = parse_query(sql)
    expected = execute_on_rows(parsed, _TABLE.schema, _TABLE.iter_rows())
    got = _STORE.execute(parsed)
    assert got.rows() == list(expected.iter_rows()), sql


@settings(max_examples=40, deadline=None)
@given(_where_clause())
def test_skip_soundness_accounting(where):
    """Skipped + cached + scanned always covers every row exactly."""
    sql = f"SELECT COUNT(*) FROM data{where}"
    stats = _STORE.execute(sql).stats
    assert (
        stats.rows_skipped + stats.rows_cached + stats.rows_scanned
        == stats.rows_total
    )
