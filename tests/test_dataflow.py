"""Unit tests for the dataflow engine and the REP011-REP015 rules.

Two layers:

- the engine primitives (CFG shape, reaching definitions, free names,
  mutation detection, call resolution, buffer taint) exercised on
  synthetic snippets covering branches, loops, try/except,
  comprehensions and nested defs;
- seeded known-bad fixtures proving each interprocedural rule fires
  exactly where the concurrency contract is broken, plus the matching
  known-good variants proving the legal idioms stay silent.
"""

import ast
import textwrap

from repro.analysis import run_lint
from repro.analysis.dataflow import (
    Project,
    TaintAnalysis,
    bound_names,
    build_cfg,
    free_names,
    mutations_through,
    reaching_definitions,
    resolve_callable,
    submission_sites,
)


def fn_node(source, name=None):
    """The (first, or named) function definition in a snippet."""
    tree = ast.parse(textwrap.dedent(source))
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            if name is None or node.name == name:
                return node
    raise AssertionError("snippet defines no function")


def project_of(source, rel_path="core/mod.py"):
    return Project([(rel_path, ast.parse(textwrap.dedent(source)))])


def lint_snippet(tmp_path, source, rel_path="core/mod.py", select=None):
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], select=select)


class TestControlFlowGraph:
    def test_straight_line_is_one_block_plus_exit(self):
        cfg = build_cfg(
            fn_node(
                """
                def f():
                    a = 1
                    b = a + 1
                    return b
                """
            )
        )
        bodied = [b for b in cfg.reachable_blocks() if b.statements]
        assert len(bodied) == 1
        assert cfg.exit_index in bodied[0].successors

    def test_if_else_branches_rejoin(self):
        cfg = build_cfg(
            fn_node(
                """
                def f(flag):
                    if flag:
                        x = 1
                    else:
                        x = 2
                    return x
                """
            )
        )
        # Entry splits two ways; both arms feed the join block holding
        # the return, which feeds the synthetic exit.
        entry = cfg.blocks[0]
        assert len(entry.successors) == 2
        join = [
            b
            for b in cfg.reachable_blocks()
            if any(isinstance(s, ast.Return) for s in b.statements)
        ]
        assert len(join) == 1
        assert len(join[0].predecessors) == 2

    def test_while_loop_has_back_edge(self):
        cfg = build_cfg(
            fn_node(
                """
                def f(n):
                    i = 0
                    while i < n:
                        i = i + 1
                    return i
                """
            )
        )
        assert any(
            succ <= block.index
            for block in cfg.reachable_blocks()
            for succ in block.successors
        )

    def test_code_after_return_is_unreachable(self):
        source = fn_node(
            """
            def f():
                return 1
                x = 2
            """
        )
        cfg = build_cfg(source)
        reachable = {
            id(stmt)
            for block in cfg.reachable_blocks()
            for stmt in block.statements
        }
        assert id(source.body[1]) not in reachable

    def test_break_exits_loop(self):
        source = fn_node(
            """
            def f(items):
                for item in items:
                    if item:
                        break
                    unreached_only_after_break = 0
                return item
            """
        )
        cfg = build_cfg(source)
        reachable = {
            id(stmt)
            for block in cfg.reachable_blocks()
            for stmt in block.statements
        }
        # Both the post-break loop body and the statement after the
        # loop stay reachable (break only skips the rest of *this*
        # iteration's body on its path).
        assert id(source.body[-1]) in reachable

    def test_except_handler_is_reachable(self):
        source = fn_node(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    handled = 1
                return 0
            """
        )
        cfg = build_cfg(source)
        handler_stmt = source.body[0].handlers[0].body[0]
        reachable = {
            id(stmt)
            for block in cfg.reachable_blocks()
            for stmt in block.statements
        }
        assert id(handler_stmt) in reachable


class TestReachingDefinitions:
    def test_both_branch_definitions_reach_the_join(self):
        source = fn_node(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        defs = reaching_definitions(source)
        at_return = defs.at_statement(source.body[-1])
        assert sorted(d.line for d in at_return["x"]) == [4, 6]

    def test_straight_line_strong_update(self):
        source = fn_node(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        defs = reaching_definitions(source)
        at_return = defs.at_statement(source.body[-1])
        assert [d.line for d in at_return["x"]] == [4]

    def test_loop_body_definition_survives_the_back_edge(self):
        source = fn_node(
            """
            def f(n):
                i = 0
                while i < n:
                    i = i + 1
                return i
            """
        )
        defs = reaching_definitions(source)
        at_return = defs.at_statement(source.body[-1])
        assert sorted(d.line for d in at_return["i"]) == [3, 5]

    def test_try_body_definition_reaches_the_handler(self):
        source = fn_node(
            """
            def f():
                x = 1
                try:
                    x = 2
                    risky()
                except ValueError:
                    return x
                return x
            """
        )
        defs = reaching_definitions(source)
        handler_return = source.body[-2].handlers[0].body[0]
        assert {d.line for d in defs.at_statement(handler_return)["x"]} == {5}

    def test_parameters_are_definitions(self):
        source = fn_node("def f(n, *rest, **extra):\n    return n\n")
        defs = reaching_definitions(source)
        assert {d.kind for d in defs.definitions_of("n")} == {"param"}
        assert defs.definitions_of("rest")
        assert defs.definitions_of("extra")

    def test_definitions_of_collects_every_binding(self):
        source = fn_node(
            """
            def f(flag):
                x = 1
                if flag:
                    x = 2
                for x in ():
                    pass
                return x
            """
        )
        defs = reaching_definitions(source)
        assert len(defs.definitions_of("x")) == 3


class TestScopes:
    def test_comprehension_targets_are_bound(self):
        source = fn_node(
            """
            def f(items):
                doubled = [x * 2 for x in items]
                pairs = {k: v for k, v in items}
                return doubled, pairs
            """
        )
        assert {"x", "k", "v"} <= bound_names(source)
        assert free_names(source) == set()

    def test_nested_function_frees_propagate(self):
        source = fn_node(
            """
            def outer(items):
                total = sum(items)
                def inner(y):
                    return y + offset + total
                return inner
            """,
            "outer",
        )
        # ``total`` is bound in outer; ``offset`` is free all the way
        # out; ``sum`` is a builtin and still counts as free here
        # (callers intersect with the names they care about).
        frees = free_names(source)
        assert "offset" in frees
        assert "total" not in frees

    def test_mutation_kinds(self):
        source = fn_node(
            """
            def work(item):
                acc.append(item)
                state.count += 1
                table[item] = 1
                obj.attr = 2
                del table[0]
            """,
            "work",
        )
        kinds = {
            (m.name, m.kind)
            for m in mutations_through(
                source, {"acc", "state", "table", "obj"}
            )
        }
        assert ("acc", "method") in kinds
        assert ("state", "aug") in kinds or ("state", "attr-store") in kinds
        assert ("table", "subscript-store") in kinds
        assert ("obj", "attr-store") in kinds

    def test_reads_are_not_mutations(self):
        source = fn_node(
            """
            def work(item):
                local = list(acc)
                local.append(item)
                return acc[0] + state.count
            """,
            "work",
        )
        assert mutations_through(source, {"acc", "state"}) == []


class TestProjectResolution:
    def test_submission_site_and_nested_def_resolution(self):
        project = project_of(
            """
            def run(executor, items):
                def work(item):
                    return item
                return executor.map_ordered(work, items)
            """
        )
        sites = list(submission_sites(project, "core/mod.py"))
        assert [s.seam for s in sites] == ["map_ordered"]
        node, label = resolve_callable(sites[0], project)
        assert label == "work"
        assert isinstance(node, ast.FunctionDef)

    def test_lambda_resolves_to_itself(self):
        project = project_of(
            """
            def run(executor, items):
                return executor.map_ordered(lambda x: x + 1, items)
            """
        )
        (site,) = submission_sites(project, "core/mod.py")
        node, label = resolve_callable(site, project)
        assert label == "lambda"
        assert isinstance(node, ast.Lambda)

    def test_reachability_follows_self_calls(self):
        project = project_of(
            """
            class Agg:
                def chunk_partial(self, data):
                    return self._helper(data)

                def _helper(self, data):
                    return self._leaf(data)

                def _leaf(self, data):
                    return data
            """
        )
        (root,) = [
            info
            for info in project.function_infos()
            if info.name == "chunk_partial"
        ]
        reached = project.reachable_from(root)
        names = {key[1] for key in reached}
        assert {"Agg._helper", "Agg._leaf"} <= names


class TestBufferTaint:
    def _sinks(self, source):
        project = project_of(source)
        (info,) = [
            fn for fn in project.function_infos() if fn.name == "decode"
        ]
        return TaintAnalysis(info, project).sinks()

    def test_view_of_frombuffer_is_tainted(self):
        sinks = self._sinks(
            """
            def decode(buf):
                import numpy as np
                arr = np.frombuffer(buf, dtype="uint8")
                view = arr[4:]
                view[0] = 1
                return view
            """
        )
        assert [s.name for s in sinks] == ["view"]
        assert sinks[0].kind == "subscript-store"

    def test_copy_launders_the_taint(self):
        sinks = self._sinks(
            """
            def decode(buf):
                import numpy as np
                arr = np.frombuffer(buf, dtype="uint8")
                fresh = arr.copy()
                fresh[0] = 1
                return fresh
            """
        )
        assert sinks == []


class TestSeededFixtures:
    """Each known-bad fixture produces exactly the expected finding."""

    def test_rep011_closure_write(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def run(executor, items):
                acc = []
                def work(item):
                    acc.append(item)
                    return item
                return executor.map_ordered(work, items)
            """,
            select=["REP011"],
        )
        assert report.codes() == {"REP011"}
        assert len(report.findings) == 1
        assert "writes through captured 'acc'" in report.findings[0].message

    def test_rep011_module_registry_capture(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            REGISTRY = {}

            def run(executor, items):
                def work(item):
                    return len(REGISTRY) + item
                return executor.map_ordered(work, items)
            """,
            select=["REP011"],
        )
        assert report.codes() == {"REP011"}
        assert "module-level mutable binding" in report.findings[0].message

    def test_rep011_pure_closure_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def run(executor, items):
                offset = 3
                def work(item):
                    local = []
                    local.append(item)
                    return item + offset
                return executor.map_ordered(work, items)
            """,
            select=["REP011"],
        )
        assert report.ok

    def test_rep012_transitive_self_write(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    return self._helper(data)

                def _helper(self, data):
                    self.cache = data
                    return data
            """,
            select=["REP012"],
        )
        assert report.codes() == {"REP012"}
        assert len(report.findings) == 1
        assert "_helper" in report.findings[0].message

    def test_rep012_pure_closure_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    return self._helper(data)

                def _helper(self, data):
                    shaped = [data, data]
                    shaped.append(data)
                    return shaped
            """,
            select=["REP012"],
        )
        assert report.ok

    def test_rep013_set_iteration_in_merge(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def merge_partials(parts):
                keys = {p.key for p in parts}
                out = []
                for key in keys:
                    out.append(key)
                return out
            """,
            select=["REP013"],
        )
        assert report.codes() == {"REP013"}
        assert len(report.findings) == 1

    def test_rep013_sorted_wrapper_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def merge_partials(parts):
                keys = {p.key for p in parts}
                out = []
                for key in sorted(keys):
                    out.append(key)
                return out
            """,
            select=["REP013"],
        )
        assert report.ok

    def test_rep013_dict_iteration_is_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def merge_partials(parts):
                out = []
                for key in parts:
                    out.append(parts[key])
                return out
            """,
            select=["REP013"],
        )
        assert report.ok

    def test_rep014_frombuffer_view_store(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def decode(buf):
                arr = np.frombuffer(buf, dtype=np.uint8)
                view = arr[4:]
                view[0] = 1
                return view
            """,
            select=["REP014"],
        )
        assert report.codes() == {"REP014"}
        assert len(report.findings) == 1
        assert "frombuffer" in report.findings[0].message

    def test_rep014_copy_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import numpy as np

            def decode(buf):
                arr = np.frombuffer(buf, dtype=np.uint8)
                fresh = arr.copy()
                fresh[0] = 1
                return fresh
            """,
            select=["REP014"],
        )
        assert report.ok

    def test_rep015_lock_capture(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import threading

            def run(executor, items):
                lock = threading.Lock()
                def work(item):
                    with lock:
                        return item
                return executor.map_ordered(work, items)
            """,
            select=["REP015"],
        )
        assert report.codes() == {"REP015"}
        assert "'lock'" in report.findings[0].message

    def test_rep015_getstate_class_passes(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def __getstate__(self):
                    state = dict(self.__dict__)
                    del state["_lock"]
                    return state

                def scan(self, executor, items):
                    def work(item):
                        return self.weigh(item)
                    return executor.map_ordered(work, items)

                def weigh(self, item):
                    return item
            """,
            select=["REP015"],
        )
        assert report.ok

    def test_rep015_lockful_class_capture_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()

                def scan(self, executor, items):
                    def work(item):
                        return self.weigh(item)
                    return executor.map_ordered(work, items)

                def weigh(self, item):
                    return item
            """,
            select=["REP015"],
        )
        assert report.codes() == {"REP015"}
