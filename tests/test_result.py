"""Result post-processing tests: ordering determinism, HAVING, LIMIT."""

import pytest

from repro.core.result import (
    QueryResult,
    ScanStats,
    apply_having,
    apply_order_limit,
    build_result_table,
    finalize,
    resolve_output_expr,
)
from repro.core.table import Table
from repro.errors import UnsupportedQueryError
from repro.sql.parser import parse_query


def _query(sql: str):
    return parse_query(sql)


class TestResolveOutputExpr:
    def test_alias_resolves(self):
        query = _query("SELECT COUNT(*) as c FROM t GROUP BY a ORDER BY c")
        resolved = resolve_output_expr(query.order_by[0].expr, query.select)
        assert resolved.sql() == "c"

    def test_structural_match_resolves(self):
        from repro.sql.ast_nodes import Aggregate, walk

        query = _query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1")
        resolved = resolve_output_expr(query.having, query.select)
        # The aggregate becomes a FieldRef to the output column (which
        # keeps the canonical name "COUNT(*)").
        assert not any(isinstance(n, Aggregate) for n in walk(resolved))

    def test_unselected_aggregate_rejected(self):
        query = _query("SELECT a FROM t GROUP BY a HAVING SUM(x) > 1")
        with pytest.raises(UnsupportedQueryError):
            resolve_output_expr(query.having, query.select)


class TestOrderLimit:
    def _rows(self):
        return [
            {"g": "b", "c": 2},
            {"g": "a", "c": 2},
            {"g": "c", "c": 5},
        ]

    def test_explicit_desc_with_tiebreak(self):
        query = _query("SELECT g, c FROM t ORDER BY c DESC")
        ordered = apply_order_limit(self._rows(), query)
        assert [r["g"] for r in ordered] == ["c", "a", "b"]

    def test_implicit_order_without_order_by(self):
        query = _query("SELECT g, c FROM t")
        ordered = apply_order_limit(self._rows(), query)
        assert [r["g"] for r in ordered] == ["a", "b", "c"]

    def test_limit(self):
        query = _query("SELECT g, c FROM t ORDER BY c DESC LIMIT 1")
        ordered = apply_order_limit(self._rows(), query)
        assert len(ordered) == 1
        assert ordered[0]["g"] == "c"

    def test_nulls_first_ascending(self):
        rows = [{"g": "x"}, {"g": None}, {"g": "a"}]
        query = _query("SELECT g FROM t ORDER BY g ASC")
        ordered = apply_order_limit(rows, query)
        assert [r["g"] for r in ordered] == [None, "a", "x"]

    def test_nulls_last_descending(self):
        rows = [{"g": "x"}, {"g": None}, {"g": "a"}]
        query = _query("SELECT g FROM t ORDER BY g DESC")
        ordered = apply_order_limit(rows, query)
        assert [r["g"] for r in ordered] == ["x", "a", None]

    def test_order_by_expression_over_alias(self):
        rows = [{"c": 1}, {"c": 3}, {"c": 2}]
        query = _query("SELECT COUNT(*) as c FROM t ORDER BY c * -1 ASC")
        ordered = apply_order_limit(rows, query)
        assert [r["c"] for r in ordered] == [3, 2, 1]


class TestHaving:
    def test_filters(self):
        rows = [{"g": "a", "c": 1}, {"g": "b", "c": 5}]
        query = _query("SELECT g, COUNT(*) as c FROM t GROUP BY g HAVING c > 2")
        assert apply_having(rows, query) == [{"g": "b", "c": 5}]

    def test_no_having_is_noop(self):
        rows = [{"g": "a"}]
        query = _query("SELECT g FROM t GROUP BY g")
        assert apply_having(rows, query) == rows


class TestBuildTable:
    def test_columns_in_select_order(self):
        rows = [{"b": 1, "a": "x"}]
        query = _query("SELECT a, b FROM t")
        table = build_result_table(rows, query)
        assert table.field_names == ["a", "b"]

    def test_duplicate_output_names_rejected(self):
        query = _query("SELECT a, a FROM t")
        with pytest.raises(UnsupportedQueryError):
            build_result_table([], query)

    def test_empty_result(self):
        query = _query("SELECT a FROM t")
        table = build_result_table([], query)
        assert table.n_rows == 0


class TestFinalize:
    def test_pipeline(self):
        rows = [
            {"g": "a", "c": 10},
            {"g": "b", "c": 1},
            {"g": "c", "c": 7},
        ]
        query = _query(
            "SELECT g, COUNT(*) as c FROM t GROUP BY g "
            "HAVING c > 2 ORDER BY c DESC LIMIT 1"
        )
        table = finalize(rows, query)
        assert list(table.iter_rows()) == [("a", 10)]


class TestScanStatsMerge:
    def test_merge_adds(self):
        a = ScanStats(rows_total=10, rows_scanned=4, fields_accessed=("x",))
        b = ScanStats(rows_total=5, rows_scanned=1, fields_accessed=("y",))
        merged = a.merge(b)
        assert merged.rows_total == 15
        assert merged.rows_scanned == 5
        assert merged.fields_accessed == ("x", "y")

    def test_fractions(self):
        stats = ScanStats(rows_total=100, rows_skipped=90, rows_scanned=10)
        assert stats.skip_fraction == pytest.approx(0.9)
        assert stats.scan_fraction == pytest.approx(0.1)

    def test_zero_rows_fractions(self):
        assert ScanStats().skip_fraction == 0.0


class TestQueryResult:
    def test_rows_and_sorted_rows(self):
        table = Table.from_columns({"a": ["b", "a"]})
        result = QueryResult(table=table)
        assert result.rows() == [("b",), ("a",)]
        assert result.sorted_rows() == [("a",), ("b",)]
        assert result.column_names == ["a"]


class TestContentFingerprint:
    PARENT = (
        "SELECT country, COUNT(*) as c FROM data "
        "GROUP BY country ORDER BY c DESC LIMIT 10;"
    )

    def test_identical_results_match(self, log_store, basic_store):
        # Same answer computed by two differently-laid-out stores: the
        # content fingerprint sees through chunking and row order.
        a = log_store.execute(self.PARENT)
        b = basic_store.execute(self.PARENT)
        assert a.content_fingerprint() == b.content_fingerprint()
        assert a.content_equal(b)

    def test_different_results_differ(self, log_store):
        a = log_store.execute(self.PARENT)
        b = log_store.execute(self.PARENT.replace("LIMIT 10", "LIMIT 3"))
        assert a.content_fingerprint() != b.content_fingerprint()
        assert not a.content_equal(b)

    def test_value_types_are_distinguished(self, log_store):
        # 1 and "1" must not collide: the fingerprint hashes the value
        # type alongside its repr.
        a = log_store.execute("SELECT COUNT(*) as c FROM data")
        count = a.rows()[0][0]
        assert isinstance(count, int)
        fingerprint = a.content_fingerprint()
        assert fingerprint == a.content_fingerprint()  # stable
        b = log_store.execute("SELECT MIN(country) as c FROM data")
        assert fingerprint != b.content_fingerprint()


class TestActiveChunks:
    def test_recorded_and_sound(self, log_store):
        result = log_store.execute(
            "SELECT COUNT(*) FROM data WHERE country IN ('FI', 'US')"
        )
        active = result.stats.active_chunks
        assert active == tuple(sorted(set(active)))
        assert len(active) + 0 < log_store.n_chunks  # skipping happened
        # active + skipped partitions the chunk set by row accounting.
        assert (
            result.stats.rows_total
            == result.stats.rows_skipped
            + result.stats.rows_cached
            + result.stats.rows_scanned
        )

    def test_merge_unions_footprints(self):
        a = ScanStats(rows_total=10, active_chunks=(0, 2))
        b = ScanStats(rows_total=10, active_chunks=(1, 2))
        assert a.merge(b).active_chunks == (0, 1, 2)
