"""Encoding-advisor tests (PR 9): profiles, cascades, choices, wiring.

Covers the advisor's three layers end to end: the registry's cascade
pipelines round-trip byte-exactly over adversarial corpus families, the
column profiler extracts the LEA-style features the cost model scores,
and the choices wire through ``DataStore.from_table``, the PDS2 serde
framing, ``fsck`` (FSCK012) and the column-io v2 header (with v1 files
still loading).
"""

import json
import os
import tempfile

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.compress.advisor import (
    DEFAULT_CANDIDATES,
    AdvisorConfig,
    choose_codec,
    profile_values,
    sample_window,
)
from repro.compress.registry import (
    available_codecs,
    cascade_stages,
    get_codec,
    register_cascade,
)
from repro.compress.varint import encode_varint
from repro.core.datastore import DataStore, DataStoreOptions
from repro.errors import CompressionError, TableError
from repro.formats.columnio import ColumnIoBackend, write_columnio
from repro.storage.serde import load_store, save_store
from repro.workload.generator import LogsConfig, generate_query_logs


def _corpora() -> dict[str, bytes]:
    rng = np.random.default_rng(7)
    return {
        "empty": b"",
        "single": b"\x42",
        "runs": b"".join(bytes([s]) * 40 for s in range(8)) * 20,
        "random": rng.integers(0, 256, size=4096).astype(np.uint8).tobytes(),
        "text": b"select count(*) from logs where country = 'CH' " * 64,
        "non_ascii": "naïve 日本語 café — résumé".encode("utf-8") * 50,
        "null_heavy": b"\x00" * 1500 + b"ab" * 40 + b"\x00" * 300,
        "sorted_words": b"".join(
            b"table_%05d;" % i for i in range(300)
        ),
    }


# -- registry pipelines ------------------------------------------------------


def test_every_registered_codec_round_trips_corpora():
    for name in available_codecs():
        codec = get_codec(name)
        for family, data in _corpora().items():
            assert codec.decompress(codec.compress(data)) == data, (
                name,
                family,
            )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.binary(max_size=2048))
def test_every_registered_codec_round_trips_arbitrary_bytes(data):
    for name in available_codecs():
        codec = get_codec(name)
        assert codec.decompress(codec.compress(data)) == data, name


def test_cascade_metadata_and_errors():
    assert cascade_stages("delta+varint") == ("delta", "varint")
    assert cascade_stages("dict+rle+varint") == ("dict", "rle", "varint")
    assert cascade_stages("zippy") == ()  # atomics carry no stages
    with pytest.raises(CompressionError):
        get_codec("no-such-codec")
    with pytest.raises(CompressionError):
        register_cascade("zippy", ("rle", "zippy"))  # duplicate name
    with pytest.raises(CompressionError):
        register_cascade("rle+bogus", ("rle", "bogus"))  # unknown stage
    with pytest.raises(CompressionError):
        register_cascade("just-rle", ("rle",))  # needs >= 2 stages
    with pytest.raises(CompressionError):
        # Cascades compose atomics only — no nesting.
        register_cascade("nested", ("rle", "delta+varint"))


def test_cascade_equals_manual_stage_composition():
    data = _corpora()["text"]
    cascade = get_codec("zippy+huffman")
    zippy = get_codec("zippy")
    huffman = get_codec("huffman")
    assert cascade.compress(data) == huffman.compress(zippy.compress(data))


# -- the profiler ------------------------------------------------------------


def test_profile_sorted_ints():
    profile = profile_values(list(range(5000)), AdvisorConfig())
    assert profile.value_kind == "int"
    assert profile.sortedness == pytest.approx(1.0)
    assert profile.null_fraction == 0.0
    assert profile.int_width_bytes <= 3


def test_profile_run_and_null_structure():
    values = (["CH"] * 50 + ["DE"] * 50 + [None] * 100) * 20
    profile = profile_values(values, AdvisorConfig())
    assert profile.null_fraction == pytest.approx(0.5, abs=0.05)
    assert profile.mean_run_length > 5.0
    assert profile.cardinality_ratio < 0.05


def test_profile_prefix_sharing():
    values = [f"scan_table_{i:06d}" for i in range(4000)]
    profile = profile_values(values, AdvisorConfig())
    assert profile.value_kind == "string"
    assert profile.prefix_share > 0.5
    assert profile.avg_string_len == pytest.approx(17.0)


def test_profile_is_deterministic_under_fixed_seed():
    rng = np.random.default_rng(3)
    values = rng.integers(0, 1000, size=20_000).tolist()
    config = AdvisorConfig(sample_rows=512, seed=99)
    assert profile_values(values, config) == profile_values(values, config)


# -- the selector ------------------------------------------------------------


def test_choice_on_run_heavy_data_beats_identity():
    config = AdvisorConfig()
    choice = choose_codec(sample_window(_corpora()["runs"], config), config)
    assert choice.predicted_ratio > 4.0
    assert choice.codec != "none"
    # Scores are sorted descending and include the winner on top.
    assert choice.scores[0][0] == choice.codec
    scores = [row[2] for row in choice.scores]
    assert scores == sorted(scores, reverse=True)


def test_choice_on_incompressible_data_is_identity():
    config = AdvisorConfig()
    choice = choose_codec(
        sample_window(_corpora()["random"], config), config
    )
    assert choice.codec == "none"
    assert choice.predicted_ratio == pytest.approx(1.0, abs=0.05)


def test_choice_is_deterministic_and_empty_safe():
    config = AdvisorConfig(seed=5)
    sample = sample_window(_corpora()["text"], config)
    assert choose_codec(sample, config) == choose_codec(sample, config)
    empty = choose_codec(b"", config)
    assert empty.codec == "none"
    assert empty.sample_bytes == 0


def test_forced_candidate_list_is_honoured():
    config = AdvisorConfig()
    choice = choose_codec(
        sample_window(_corpora()["text"], config),
        config,
        candidates=("lzo",),
    )
    assert choice.codec == "lzo"
    assert [row[0] for row in choice.scores] == ["lzo"]


def test_bad_advisor_knobs_raise():
    with pytest.raises(CompressionError):
        AdvisorConfig(mode="bogus")
    with pytest.raises(CompressionError):
        AdvisorConfig(sample_rows=0)
    with pytest.raises(CompressionError):
        AdvisorConfig(sample_budget_bytes=16)
    with pytest.raises(CompressionError):
        AdvisorConfig(size_weight=-1.0)
    with pytest.raises(CompressionError):
        AdvisorConfig(candidates=())
    with pytest.raises(CompressionError):
        DataStoreOptions(codec="no-such-codec")
    with pytest.raises(CompressionError):
        DataStoreOptions(codec="auto", advisor_mode="bogus")


def test_default_candidates_are_registered():
    names = set(available_codecs())
    assert set(DEFAULT_CANDIDATES) <= names


# -- DataStore + serde wiring ------------------------------------------------


def _demo_table(rows: int = 2500):
    return generate_query_logs(LogsConfig(n_rows=rows))


def _auto_options(**overrides) -> DataStoreOptions:
    base = dict(
        partition_fields=("country", "table_name"),
        max_chunk_rows=600,
        reorder_rows=True,
        codec="auto",
    )
    base.update(overrides)
    return DataStoreOptions(**base)


def test_auto_import_records_choices_and_round_trips(tmp_path):
    table = _demo_table()
    store = DataStore.from_table(table, _auto_options())
    stats = store.import_stats
    assert stats is not None and stats.field_codecs
    for name, field in store.fields.items():
        if field.virtual:
            continue
        assert field.codec in set(available_codecs()), name
        assert stats.field_codecs[name]["codec"] == field.codec
        assert "profile" in stats.field_codecs[name]
    path = str(tmp_path / "auto.pds")
    save_store(store, path)
    loaded = load_store(path)
    for name, field in store.fields.items():
        if field.virtual:
            continue
        assert loaded.fields[name].codec == field.codec
        choice = loaded.fields[name].codec_choice
        assert choice is not None and choice["codec"] == field.codec
        assert choice["actual_ratio"] > 0
    sql = (
        "SELECT country, COUNT(*) c FROM data GROUP BY country "
        "ORDER BY c DESC LIMIT 5"
    )
    assert loaded.execute(sql).rows() == store.execute(sql).rows()


def test_auto_import_is_deterministic(tmp_path):
    table = _demo_table(1500)
    first = str(tmp_path / "a.pds")
    second = str(tmp_path / "b.pds")
    save_store(DataStore.from_table(table, _auto_options()), first)
    save_store(DataStore.from_table(table, _auto_options()), second)
    with open(first, "rb") as fa, open(second, "rb") as fb:
        assert fa.read() == fb.read()


def test_forced_codec_applies_to_every_field(tmp_path):
    store = DataStore.from_table(
        _demo_table(1200), _auto_options(codec="lzo")
    )
    for name, field in store.fields.items():
        if field.virtual:
            continue
        assert field.codec == "lzo", name
    path = str(tmp_path / "forced.pds")
    save_store(store, path)
    assert load_store(path).n_rows == store.n_rows


def test_advisor_store_passes_fsck():
    from repro.analysis.fsck import fsck_store

    store = DataStore.from_table(_demo_table(1500), _auto_options())
    report = fsck_store(store)
    assert report.ok, [str(f) for f in report.findings]


def test_fsck012_fires_on_unresolvable_codec():
    from repro.analysis.fsck import fsck_store

    store = DataStore.from_table(_demo_table(800), _auto_options())
    victim = next(
        f for f in store.fields.values() if not f.virtual
    )
    victim.codec = "retired-codec"
    report = fsck_store(store)
    assert "FSCK012" in report.codes()


_cells = st.one_of(
    st.text(alphabet="abc日本_%", max_size=8),
    st.none(),
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(_cells, min_size=1, max_size=50), st.integers(0, 2**20))
def test_property_advisor_stores_pass_fsck(strings, number):
    from repro.analysis.fsck import fsck_store
    from repro.core.table import Column, DataType, Table

    table = Table(
        [
            Column("s", strings, DataType.STRING),
            Column("n", [number] * len(strings), DataType.INT),
        ]
    )
    options = DataStoreOptions(max_chunk_rows=16, codec="auto")
    store = DataStore.from_table(table, options)
    report = fsck_store(store)
    assert report.ok, [str(f) for f in report.findings]
    again = DataStore.from_table(table, options)
    assert {n: f.codec for n, f in store.fields.items()} == {
        n: f.codec for n, f in again.fields.items()
    }


# -- column-io ---------------------------------------------------------------


def test_columnio_auto_round_trips_and_records_choices(tmp_path):
    table = _demo_table(1500)
    path = str(tmp_path / "auto.cio")
    write_columnio(table, path, codec="auto", block_rows=400)
    backend = ColumnIoBackend(path)
    for name in table.field_names:
        assert backend.read_column(name) == table.column(name).values
        assert backend.column_codec(name) in set(available_codecs())
        choice = backend.column_codec_choice(name)
        assert choice is not None
        assert choice["codec"] == backend.column_codec(name)
    with pytest.raises(TableError):
        backend.column_codec("missing")


def test_columnio_codec_stats_are_per_instance(tmp_path):
    table = _demo_table(800)
    path = str(tmp_path / "stats.cio")
    write_columnio(table, path, block_rows=300)
    first = ColumnIoBackend(path)
    first.read_column(table.field_names[0])
    second = ColumnIoBackend(path)
    assert second.codec_stats() == {}  # untouched instance sees nothing
    stats = first.codec_stats()
    assert sum(s.decode_calls for s in stats.values()) > 0


def test_columnio_v1_header_still_loads(tmp_path):
    from repro.core.table import DataType
    from repro.formats.columnio import _MAGIC, _encode_block

    codec = get_codec("zippy")
    block = codec.compress(
        _encode_block(["alpha", "beta", None], DataType.STRING)
    )
    header = json.dumps(
        {
            "n_rows": 3,
            "block_rows": 8192,
            "codec": "zippy",
            "columns": [
                {
                    "name": "word",
                    "dtype": DataType.STRING.value,
                    "blocks": [{"offset": 0, "size": len(block)}],
                }
            ],
        }
    ).encode("utf-8")
    path = str(tmp_path / "legacy.cio")
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(encode_varint(len(header)))
        handle.write(header)
        handle.write(block)
    backend = ColumnIoBackend(path)
    assert backend.column_codec("word") == "zippy"
    assert backend.column_codec_choice("word") is None
    assert backend.read_column("word") == ["alpha", "beta", None]


def test_columnio_unknown_header_version_rejected(tmp_path):
    header = json.dumps(
        {"version": 7, "n_rows": 0, "block_rows": 1, "columns": []}
    ).encode("utf-8")
    from repro.formats.columnio import _MAGIC

    path = str(tmp_path / "future.cio")
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(encode_varint(len(header)))
        handle.write(header)
    with pytest.raises(TableError):
        ColumnIoBackend(path)


# -- the bench harness -------------------------------------------------------


def test_advisor_bench_smoke():
    from repro.workload.benchadvisor import (
        AdvisorBenchConfig,
        render_advisor_report,
        run_advisor_bench,
    )

    report = run_advisor_bench(AdvisorBenchConfig(rows=1200, repeats=1))
    assert report["fields"]
    assert report["fsck_clean"], report["fsck_findings"]
    assert report["save_load"]["sections_match"]
    for entry in report["fields"].values():
        assert entry["sections_identical"]
        assert entry["size_decode_metric"] > 0
    assert report["size_decode_geomean"] > 0
    assert any("geomean" in line for line in render_advisor_report(report))
