"""Aggregation state tests — the row-wise reference semantics."""

import pytest

from repro.core.aggregation import (
    ApproxCountDistinctState,
    AvgState,
    CountDistinctState,
    CountStarState,
    CountValueState,
    MaxState,
    MinState,
    SumState,
    make_state,
)
from repro.errors import ExecutionError, UnsupportedQueryError
from repro.sql.ast_nodes import Aggregate, FieldRef, Star
from repro.sql.parser import parse_query


class TestCountStates:
    def test_count_star_counts_everything(self):
        state = CountStarState()
        for value in (1, None, "x"):
            state.add(value)
        assert state.result() == 3

    def test_count_value_skips_nulls(self):
        state = CountValueState()
        for value in (1, None, 2, None):
            state.add(value)
        assert state.result() == 2

    def test_merge(self):
        a, b = CountStarState(), CountStarState()
        a.add(1)
        b.add(1)
        b.add(1)
        a.merge(b)
        assert a.result() == 3


class TestSumAvg:
    def test_sum(self):
        state = SumState()
        for value in (1, 2.5, None):
            state.add(value)
        assert state.result() == 3.5

    def test_sum_empty_is_null(self):
        assert SumState().result() is None
        state = SumState()
        state.add(None)
        assert state.result() is None

    def test_sum_string_raises(self):
        with pytest.raises(ExecutionError):
            SumState().add("x")

    def test_avg(self):
        state = AvgState()
        for value in (2, 4, None):
            state.add(value)
        assert state.result() == 3.0

    def test_avg_empty_is_null(self):
        assert AvgState().result() is None

    def test_avg_merge(self):
        a, b = AvgState(), AvgState()
        a.add(2)
        b.add(4)
        b.add(6)
        a.merge(b)
        assert a.result() == 4.0


class TestMinMax:
    def test_min_max_numbers(self):
        low, high = MinState(), MaxState()
        for value in (5, None, 3, 9):
            low.add(value)
            high.add(value)
        assert low.result() == 3
        assert high.result() == 9

    def test_min_max_strings(self):
        low, high = MinState(), MaxState()
        for value in ("pear", "apple", None, "zebra"):
            low.add(value)
            high.add(value)
        assert low.result() == "apple"
        assert high.result() == "zebra"

    def test_empty_is_null(self):
        assert MinState().result() is None
        assert MaxState().result() is None

    def test_merge(self):
        a, b = MinState(), MinState()
        a.add(5)
        b.add(2)
        a.merge(b)
        assert a.result() == 2


class TestDistinct:
    def test_exact(self):
        state = CountDistinctState()
        for value in (1, 1, 2, None, 2, 3):
            state.add(value)
        assert state.result() == 3

    def test_exact_merge_unions(self):
        a, b = CountDistinctState(), CountDistinctState()
        a.add(1)
        a.add(2)
        b.add(2)
        b.add(3)
        a.merge(b)
        assert a.result() == 3

    def test_approx_small_is_exact(self):
        state = ApproxCountDistinctState(m=64)
        for i in range(40):
            state.add(i)
            state.add(i)
        assert state.result() == 40

    def test_approx_merge(self):
        a = ApproxCountDistinctState(m=512)
        b = ApproxCountDistinctState(m=512)
        for i in range(2000):
            (a if i % 2 else b).add(i)
        a.merge(b)
        assert abs(a.result() - 2000) / 2000 < 0.2


class TestMakeState:
    def _agg(self, sql: str) -> Aggregate:
        return parse_query(f"SELECT {sql} FROM t").select[0].expr

    @pytest.mark.parametrize(
        "sql,cls",
        [
            ("COUNT(*)", CountStarState),
            ("COUNT(x)", CountValueState),
            ("SUM(x)", SumState),
            ("MIN(x)", MinState),
            ("MAX(x)", MaxState),
            ("AVG(x)", AvgState),
            ("COUNT(DISTINCT x)", CountDistinctState),
            ("APPROX_COUNT_DISTINCT(x, 32)", ApproxCountDistinctState),
        ],
    )
    def test_dispatch(self, sql, cls):
        assert isinstance(make_state(self._agg(sql)), cls)

    def test_unknown_aggregate(self):
        with pytest.raises(UnsupportedQueryError):
            make_state(Aggregate("MEDIAN", FieldRef("x")))

    def test_approx_m_passed_through(self):
        state = make_state(self._agg("APPROX_COUNT_DISTINCT(x, 32)"))
        assert state.sketch.m == 32
