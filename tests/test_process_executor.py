"""The GIL-escaping executor: process == thread == serial, no leaks.

The process pool answers queries from read-only views over a shared
arena, so three things must hold on any machine:

- **Bit-identity**: a process-pool store returns the same rows *and*
  the same ScanStats counters as serial and thread stores, for
  arbitrary query sequences, worker counts and corpora (with and
  without NULLs) — hypothesis-driven like the PR 2 thread suite;
- **Lifecycle**: every shared-memory segment the executor caused to
  exist is unlinked by ``close()``, including after a worker raises;
- **Sanitation**: :class:`~repro.testing.SanitizingExecutor` wraps the
  process strategy transparently and detects a worker writing even a
  single arena byte.
"""

from __future__ import annotations

import dataclasses
import os
from multiprocessing import resource_tracker, shared_memory

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.executor import ProcessExecutor, make_executor
from repro.storage.arena import SEGMENT_PREFIX, live_segment_names
from repro.testing import CapturedStateMutation, SanitizingExecutor
from repro.workload.generator import LogsConfig, generate_query_logs

_TABLE = generate_query_logs(
    LogsConfig(n_rows=800, n_days=10, n_teams=5, seed=31, null_latency_fraction=0.06)
)


def _build(**overrides) -> DataStore:
    options = DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=48,
        reorder_rows=True,
        cache_chunk_results=False,  # counters stay history-independent
        **overrides,
    )
    return DataStore.from_table(_TABLE, options)


# One store per strategy; every test sends the same SQL to all three,
# so rows *and* counters must agree query by query.
_SERIAL = _build()
_THREAD = _build(executor="thread", workers=3)
_PROCESS = _build(executor="process", workers=3)

_QUERIES = st.sampled_from(
    [
        "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
        "ORDER BY c DESC LIMIT 8",
        "SELECT table_name, SUM(latency) AS s, MIN(latency) AS lo "
        "FROM data GROUP BY table_name ORDER BY s DESC LIMIT 10",
        "SELECT user_name, COUNT(DISTINCT table_name) AS t FROM data "
        "GROUP BY user_name ORDER BY t DESC LIMIT 5",
        "SELECT country, AVG(latency) AS a FROM data "
        "WHERE latency > 100 GROUP BY country ORDER BY a ASC LIMIT 6",
        "SELECT date(timestamp) AS d, COUNT(*) AS c FROM data "
        "GROUP BY d ORDER BY c DESC LIMIT 7",
        "SELECT country, month(timestamp) AS m, MAX(latency) AS hi "
        "FROM data GROUP BY country, m ORDER BY hi DESC LIMIT 6",
        "SELECT COUNT(*) AS c FROM data WHERE country = 'US'",
        "SELECT COUNT(latency) AS c FROM data WHERE latency IS NOT NULL",
    ]
)


def _counter_fields(stats) -> dict:
    return {
        f.name: getattr(stats, f.name)
        for f in dataclasses.fields(stats)
        if not f.name.endswith("_seconds")
    }


def _shm_segments() -> set[str]:
    root = "/dev/shm"
    if not os.path.isdir(root):
        return set()
    return {n for n in os.listdir(root) if n.startswith(SEGMENT_PREFIX)}


class _ArenaPoker:
    """A picklable task that flips one arena byte from inside a worker.

    Exactly the regression the sanitizer exists to catch: the pool
    workers share the segment, so a single rogue write is visible to
    (and must be detected by) the parent's before/after fingerprints.
    """

    def __init__(self, name: str) -> None:
        self.name = name

    def __call__(self, offset: int) -> int:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            segment = shared_memory.SharedMemory(name=self.name)
        finally:
            resource_tracker.register = original_register
        try:
            segment.buf[offset] = (segment.buf[offset] + 1) % 256
        finally:
            segment.close()
        return offset


class TestProcessMatchesSerial:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(queries=st.lists(_QUERIES, min_size=1, max_size=3))
    def test_rows_and_counters_identical(self, queries):
        for sql in queries:
            serial = _SERIAL.execute(sql)
            thread = _THREAD.execute(sql)
            process = _PROCESS.execute(sql)
            assert serial.rows() == thread.rows() == process.rows(), sql
            counters = _counter_fields(serial.stats)
            assert counters == _counter_fields(thread.stats), sql
            assert counters == _counter_fields(process.stats), sql

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_every_worker_count_bit_identical(self, workers):
        store = _build(executor="process", workers=workers)
        try:
            for sql in (
                "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
                "ORDER BY c DESC LIMIT 8",
                "SELECT table_name, SUM(latency) AS s FROM data "
                "GROUP BY table_name ORDER BY s DESC LIMIT 10",
            ):
                assert store.execute(sql).rows() == _SERIAL.execute(sql).rows()
        finally:
            store.executor.close()

    def test_null_corpus_bit_identical(self, null_log_table):
        options = DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=96,
            reorder_rows=True,
        )
        serial = DataStore.from_table(null_log_table, options)
        process = DataStore.from_table(
            null_log_table,
            dataclasses.replace(options, executor="process", workers=2),
        )
        try:
            sql = (
                "SELECT country, AVG(latency) AS a, COUNT(latency) AS c "
                "FROM data GROUP BY country ORDER BY a DESC LIMIT 8"
            )
            assert process.execute(sql).rows() == serial.execute(sql).rows()
        finally:
            process.executor.close()

    def test_process_store_actually_fans_out(self):
        assert isinstance(_PROCESS.executor, ProcessExecutor)
        assert _PROCESS.executor.describe() == "process(3)"
        assert _PROCESS.executor.wants_picklable_tasks


class TestArenaLeaks:
    def test_close_unlinks_every_segment(self):
        before = _shm_segments()
        store = _build(executor="process", workers=2)
        sql = "SELECT country, COUNT(*) AS c FROM data GROUP BY country"
        store.execute(sql)
        assert store.arena is not None
        name = store.arena.name
        assert name in _shm_segments()
        store.executor.close()
        assert name not in live_segment_names()
        assert _shm_segments() <= before

    def test_close_unlinks_after_worker_raises(self):
        before = _shm_segments()
        store = _build(executor="process", workers=2)
        store.execute("SELECT country, COUNT(*) AS c FROM data GROUP BY country")
        with pytest.raises(ZeroDivisionError):
            store.executor.map_ordered(_divide_by, [1, 0, 1])
        store.executor.close()
        assert _shm_segments() <= before

    def test_arena_reused_across_queries(self):
        store = _build(executor="process", workers=2)
        try:
            store.execute("SELECT country, COUNT(*) AS c FROM data GROUP BY country")
            first = store.arena
            store.execute(
                "SELECT table_name, SUM(latency) AS s FROM data "
                "GROUP BY table_name LIMIT 5"
            )
            assert store.arena is first
        finally:
            store.executor.close()


class TestSanitizedProcessExecution:
    def test_process_scans_pass_sanitizer(self):
        store = _build(executor="process", workers=2)
        store.executor = SanitizingExecutor(store.executor)
        try:
            for sql in (
                "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
                "ORDER BY c DESC LIMIT 8",
                "SELECT table_name, SUM(latency) AS s FROM data "
                "GROUP BY table_name ORDER BY s DESC LIMIT 10",
            ):
                assert store.execute(sql).rows() == _SERIAL.execute(sql).rows()
            assert store.executor.checked_submissions >= 1
            assert store.executor.checked_captures > 0
        finally:
            store.executor.close()

    def test_sanitizer_catches_worker_arena_write(self):
        store = _build(executor="process", workers=2)
        store.executor = SanitizingExecutor(store.executor)
        try:
            store.execute("SELECT country, COUNT(*) AS c FROM data GROUP BY country")
            assert store.arena is not None
            with pytest.raises(CapturedStateMutation, match="arena"):
                store.executor.map_ordered(_ArenaPoker(store.arena.name), [7, 11])
        finally:
            store.executor.close()


def _divide_by(item: int) -> int:
    return 1 // item
