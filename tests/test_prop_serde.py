"""Property test: arbitrary tables survive import -> save -> load."""

import tempfile

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.datastore import DataStore, DataStoreOptions
from repro.storage.serde import load_store, save_store

_scalars = st.one_of(
    st.text(alphabet="abcdef日本 _%'", max_size=10),
    st.none(),
)
_numbers = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.none(),
)


@st.composite
def _tables(draw):
    from repro.core.table import Column, DataType, Table

    n_rows = draw(st.integers(min_value=1, max_value=60))
    strings = draw(
        st.lists(_scalars, min_size=n_rows, max_size=n_rows)
    )
    numbers = draw(st.lists(_numbers, min_size=n_rows, max_size=n_rows))
    floats = draw(
        st.lists(
            st.one_of(
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                st.none(),
            ),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    return Table(
        [
            Column("s", strings, DataType.STRING),
            Column("n", numbers, DataType.INT),
            Column("f", floats, DataType.FLOAT),
        ]
    )


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_tables(), st.booleans(), st.booleans())
def test_save_load_round_trip(table, optimized_cols, optimized_dicts):
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("s",),
            max_chunk_rows=7,
            optimized_columns=optimized_cols,
            optimized_dicts=optimized_dicts,
        ),
    )
    with tempfile.NamedTemporaryFile(suffix=".pds") as handle:
        save_store(store, handle.name)
        loaded = load_store(handle.name)
    assert loaded.n_rows == store.n_rows
    assert loaded.chunk_row_counts == store.chunk_row_counts
    for name in ("s", "n", "f"):
        original = store.field(name)
        restored = loaded.field(name)
        assert restored.dictionary.values() == original.dictionary.values()
        for a, b in zip(original.chunks, restored.chunks):
            assert a.chunk_dict.tolist() == b.chunk_dict.tolist()
            assert a.elements.as_array().tolist() == (
                b.elements.as_array().tolist()
            )
