"""Restriction analysis tests: skipping soundness and Kleene masks."""

import numpy as np
import pytest

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.restriction import ChunkStatus, compile_restriction
from repro.core.table import Table
from repro.sql.parser import parse_query


def _store(values, extra=None, max_chunk_rows=4):
    data = {"v": values}
    if extra is not None:
        data["w"] = extra
    table = Table.from_columns(data)
    return DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("v",),
            max_chunk_rows=max_chunk_rows,
            reorder_rows=True,
        ),
    )


def _compile(store, where_sql: str):
    where = parse_query(f"SELECT v FROM data WHERE {where_sql}").where
    return compile_restriction(
        where,
        store.ensure_field,
        lambda name: store.field(name).dictionary,
        lambda name: store.field(name).chunks,
        lambda name, index: store.field(name).element_array(index),
    )


def _decide_all(store, where_sql: str):
    restriction = _compile(store, where_sql)
    return [restriction.decide(i) for i in range(store.n_chunks)]


def _reference_matches(store, where_sql: str):
    """Ground truth: evaluate the predicate per row via the dictionary."""
    from repro.core.expr_eval import evaluate, truthy

    where = parse_query(f"SELECT v FROM data WHERE {where_sql}").where
    matches = []
    for chunk_index in range(store.n_chunks):
        field_names = [
            name for name in store.fields if not store.fields[name].virtual
        ]
        columns = {
            name: store.field(name).value_array()[
                store.field(name).row_global_ids(chunk_index)
            ]
            for name in field_names
        }
        n = store.chunk_row_counts[chunk_index]
        chunk_matches = []
        for row in range(n):
            row_env = {name: columns[name][row] for name in field_names}
            chunk_matches.append(truthy(evaluate(where, row_env.__getitem__)))
        matches.append(chunk_matches)
    return matches


class TestDecisions:
    def test_unrestricted_is_full(self):
        store = _store(["a"] * 10)
        restriction = compile_restriction(
            None, store.ensure_field, None, None, None
        )
        assert restriction.unrestricted
        assert restriction.decide(0).status is ChunkStatus.FULL

    def test_in_skips_nonmatching_chunks(self):
        store = _store(["a"] * 8 + ["b"] * 8 + ["c"] * 8)
        decisions = _decide_all(store, "v IN ('a')")
        statuses = [d.status for d in decisions]
        assert ChunkStatus.SKIP in statuses
        assert ChunkStatus.FULL in statuses
        assert ChunkStatus.PARTIAL not in statuses  # chunks are pure

    def test_absent_value_skips_everything(self):
        store = _store(["a"] * 8 + ["b"] * 8)
        decisions = _decide_all(store, "v = 'zz'")
        assert all(d.status is ChunkStatus.SKIP for d in decisions)

    def test_partial_produces_row_mask(self):
        # Two values in one chunk: restriction on one -> PARTIAL.
        store = _store(["a", "b"] * 4, max_chunk_rows=100)
        decisions = _decide_all(store, "v = 'a'")
        assert decisions[0].status is ChunkStatus.PARTIAL
        assert decisions[0].row_mask.sum() == 4

    def test_not_in_flips(self):
        store = _store(["a"] * 8 + ["b"] * 8)
        decisions = _decide_all(store, "v NOT IN ('a')")
        by_status = {d.status for d in decisions}
        assert by_status == {ChunkStatus.SKIP, ChunkStatus.FULL}

    def test_range_skipping_via_ranks(self):
        store = _store([f"{c}" for c in "aabbccddee" * 4])
        decisions = _decide_all(store, "v > 'c'")
        assert any(d.status is ChunkStatus.SKIP for d in decisions)
        assert any(d.status is not ChunkStatus.SKIP for d in decisions)

    def test_numeric_range(self):
        store = _store(list(range(40)))
        decisions = _decide_all(store, "v >= 30")
        skipped_rows = sum(
            store.chunk_row_counts[i]
            for i, d in enumerate(decisions)
            if d.status is ChunkStatus.SKIP
        )
        assert skipped_rows >= 24  # chunks entirely below 30


class TestSoundness:
    """SKIP chunks contain no match; FULL chunks contain only matches."""

    @pytest.mark.parametrize(
        "where",
        [
            "v IN ('a', 'c')",
            "v = 'b'",
            "v != 'b'",
            "NOT v IN ('a')",
            "v > 'a' AND v <= 'c'",
            "v = 'a' OR w = 5",
            "NOT (v = 'a' OR w > 3)",
            "v IS NOT NULL AND w < 4",
            "w IN (1, 2) AND NOT v = 'c'",
        ],
    )
    def test_against_row_reference(self, where):
        import random

        random.seed(13)
        n = 60
        values = [random.choice(["a", "b", "c", None]) for __ in range(n)]
        extras = [random.randrange(6) for __ in range(n)]
        store = _store(values, extras, max_chunk_rows=7)
        reference = _reference_matches(store, where)
        restriction = _compile(store, where)
        for chunk_index in range(store.n_chunks):
            decision = restriction.decide(chunk_index)
            expected = reference[chunk_index]
            if decision.status is ChunkStatus.SKIP:
                assert not any(expected)
            elif decision.status is ChunkStatus.FULL:
                assert all(expected)
            else:
                assert decision.row_mask.tolist() == expected


class TestNullSemantics:
    def test_null_rows_never_match_comparisons(self):
        store = _store(["a", None, "b", None] * 3, max_chunk_rows=100)
        decision = _compile(store, "v != 'zz'").decide(0)
        # NULL rows must be excluded even under !=.
        assert decision.status is ChunkStatus.PARTIAL
        assert decision.row_mask.sum() == 6

    def test_not_over_null_excluded(self):
        store = _store(["a", None] * 4, max_chunk_rows=100)
        decision = _compile(store, "NOT v = 'zz'").decide(0)
        # NOT(NULL) is NULL: only the 4 'a' rows match.
        assert decision.row_mask.sum() == 4

    def test_is_null_matches_only_nulls(self):
        store = _store(["a", None] * 4, max_chunk_rows=100)
        decision = _compile(store, "v IS NULL").decide(0)
        assert decision.row_mask.sum() == 4
