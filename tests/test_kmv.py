"""KMV sketch tests — Section 5 "Count Distinct"."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.sketches.hashing import hash_to_unit, hash_value
from repro.sketches.kmv import KmvSketch


class TestHashing:
    def test_deterministic(self):
        assert hash_value("abc") == hash_value("abc")

    def test_type_tagged(self):
        assert hash_value(1) != hash_value("1")

    def test_integral_float_matches_int(self):
        # So 3 and 3.0 count as one distinct value across backends.
        assert hash_value(3) == hash_value(3.0)

    def test_unit_range(self):
        for value in ("a", 1, 2.5, None):
            assert 0.0 <= hash_to_unit(value) < 1.0


class TestKmvSketch:
    def test_exact_below_m(self):
        sketch = KmvSketch(m=100)
        for i in range(50):
            sketch.add(f"v{i}")
        assert sketch.estimate() == 50

    def test_duplicates_ignored(self):
        sketch = KmvSketch(m=100)
        for __ in range(10):
            for i in range(30):
                sketch.add(i)
        assert sketch.estimate() == 30

    def test_estimate_accuracy_at_scale(self):
        n = 20_000
        sketch = KmvSketch(m=1024)
        for i in range(n):
            sketch.add(f"value-{i}")
        # Relative error ~ 1/sqrt(m) ≈ 3%; allow 4 sigma.
        assert abs(sketch.estimate() - n) / n < 0.13

    def test_larger_m_reduces_error(self):
        n = 30_000
        errors = {}
        for m in (64, 4096):
            sketch = KmvSketch(m=m)
            for i in range(n):
                sketch.add(i)
            errors[m] = abs(sketch.estimate() - n) / n
        assert errors[4096] < errors[64]

    def test_merge_equals_union(self):
        a = KmvSketch(m=256)
        b = KmvSketch(m=256)
        union = KmvSketch(m=256)
        for i in range(3000):
            target = a if i % 2 else b
            target.add(i)
            union.add(i)
        a.merge(b)
        assert a.estimate() == union.estimate()

    def test_merge_size_mismatch(self):
        with pytest.raises(ExecutionError):
            KmvSketch(8).merge(KmvSketch(16))

    def test_invalid_m(self):
        with pytest.raises(ExecutionError):
            KmvSketch(0)

    def test_add_hash_array_matches_scalar_adds(self):
        values = [f"x{i}" for i in range(5000)]
        hashes = np.array([hash_to_unit(v) for v in values])
        vector = KmvSketch(m=128)
        vector.add_hash_array(hashes)
        scalar = KmvSketch(m=128)
        for value in values:
            scalar.add(value)
        assert vector.estimate() == scalar.estimate()
        assert vector.threshold == scalar.threshold

    def test_threshold_monotone_nonincreasing(self):
        sketch = KmvSketch(m=16)
        last = sketch.threshold
        for i in range(500):
            sketch.add(i)
            assert sketch.threshold <= last
            last = sketch.threshold

    @settings(max_examples=25, deadline=None)
    @given(st.sets(st.integers(), max_size=200))
    def test_exact_when_not_full_property(self, values):
        sketch = KmvSketch(m=1000)
        for value in values:
            sketch.add(value)
        assert sketch.estimate() == len(values)
