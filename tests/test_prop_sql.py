"""Property test: random ASTs render to SQL that reparses identically."""

from hypothesis import given, settings, strategies as st

from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    OrderItem,
    Query,
    SelectItem,
    Star,
    UnaryOp,
)
from repro.sql.parser import parse_query

_FIELDS = ["a", "b", "c", "ts", "name"]
# Negative numbers parse as unary minus over a positive literal, so the
# canonical-form generator sticks to non-negative numerics.
_literals = st.one_of(
    st.integers(min_value=0, max_value=1000),
    st.floats(
        min_value=0, max_value=100, allow_nan=False, allow_infinity=False
    ).map(lambda f: round(f, 3)),
    st.text(
        alphabet="abc xyz'%_0", min_size=0, max_size=8
    ),
    st.none(),
)


def _scalar_exprs():
    field = st.sampled_from(_FIELDS).map(FieldRef)
    literal = _literals.map(Literal)
    base = st.one_of(field, literal)

    def extend(children):
        return st.one_of(
            st.tuples(
                st.sampled_from(["+", "-", "*", "/"]), children, children
            ).map(lambda t: BinaryOp(t[0], t[1], t[2])),
            st.tuples(
                st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
                children,
                children,
            ).map(lambda t: BinaryOp(t[0], t[1], t[2])),
            st.tuples(
                st.sampled_from(["AND", "OR"]), children, children
            ).map(lambda t: BinaryOp(t[0], t[1], t[2])),
            children.map(lambda e: UnaryOp("NOT", e)),
            st.tuples(
                children,
                st.lists(_literals, min_size=1, max_size=3),
                st.booleans(),
            ).map(lambda t: InList(t[0], tuple(t[1]), t[2])),
            st.tuples(
                st.sampled_from(["lower", "upper", "length"]), children
            ).map(lambda t: FuncCall(t[0], (t[1],))),
            st.tuples(children, st.text("ab%_", max_size=5)).map(
                lambda t: FuncCall("like", (t[0], Literal(t[1])))
            ),
        )

    return st.recursive(base, extend, max_leaves=8)


_aggregates = st.one_of(
    st.just(Aggregate("COUNT", Star())),
    st.sampled_from(_FIELDS).map(
        lambda f: Aggregate("SUM", FieldRef(f))
    ),
    st.sampled_from(_FIELDS).map(
        lambda f: Aggregate("COUNT", FieldRef(f), distinct=True)
    ),
    st.sampled_from(_FIELDS).map(
        lambda f: Aggregate(
            "COUNT", FieldRef(f), distinct=True, approximate=True, m=64
        )
    ),
)


@st.composite
def _queries(draw) -> Query:
    grouped = draw(st.booleans())
    if grouped:
        group_expr = draw(st.sampled_from(_FIELDS)).replace("a", "a")
        group = (FieldRef(group_expr),)
        select = (
            SelectItem(FieldRef(group_expr), "g"),
            SelectItem(draw(_aggregates), "m"),
        )
        order = (OrderItem(FieldRef("m"), draw(st.booleans())),)
    else:
        group = ()
        select = (SelectItem(draw(_scalar_exprs()), "x"),)
        order = ()
    where = draw(st.none() | _scalar_exprs())
    limit = draw(st.none() | st.integers(min_value=1, max_value=50))
    return Query(
        select=select,
        table="data",
        where=where,
        group_by=group,
        order_by=order,
        limit=limit,
    )


@settings(max_examples=200, deadline=None)
@given(_queries())
def test_sql_round_trip(query):
    """parse(query.sql()) must reproduce the query exactly."""
    rendered = query.sql()
    assert parse_query(rendered) == query, rendered


@settings(max_examples=100, deadline=None)
@given(_scalar_exprs())
def test_expression_round_trip(expr):
    wrapper = Query(select=(SelectItem(expr, "x"),), table="t")
    assert parse_query(wrapper.sql()).select[0].expr == expr, wrapper.sql()
