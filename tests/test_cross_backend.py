"""Cross-backend equality: all five execution paths agree on every query.

This is the repository's strongest end-to-end property: the CSV,
record-io and column-io full-scan backends, the single-node
column-store (in several configurations) and the simulated distributed
cluster all produce the same result table for the same query (up to
floating-point summation order).
"""

import pytest

from repro.core.datastore import DataStore, DataStoreOptions
from repro.distributed import ClusterConfig, SimulatedCluster
from repro.formats import (
    ColumnIoBackend,
    CsvBackend,
    RecordIoBackend,
    write_columnio,
    write_csv,
    write_recordio,
)
from repro.testing import assert_results_equal

QUERIES = [
    # The paper's three experimental queries:
    "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
    "SELECT date(timestamp) as date, COUNT(*), SUM(latency) FROM data GROUP BY date ORDER BY date ASC LIMIT 10",
    "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 10",
    # Section 2.4's IN-restriction shape:
    "SELECT country, COUNT(*) as c FROM data WHERE country IN ('US', 'DE') GROUP BY country ORDER BY c DESC LIMIT 10",
    # Restrictions on the many-distinct and numeric fields:
    "SELECT COUNT(*) FROM data WHERE latency > 500",
    "SELECT country, SUM(latency) as s FROM data WHERE latency <= 100 GROUP BY country ORDER BY s DESC LIMIT 5",
    "SELECT user_name, COUNT(*) as c FROM data WHERE NOT country = 'US' GROUP BY user_name ORDER BY c DESC LIMIT 7",
    # Aggregate variety:
    "SELECT country, MIN(latency), MAX(latency), AVG(latency) FROM data GROUP BY country ORDER BY country ASC LIMIT 30",
    "SELECT country, COUNT(DISTINCT table_name) as cd FROM data GROUP BY country ORDER BY cd DESC, country ASC LIMIT 8",
    "SELECT country, APPROX_COUNT_DISTINCT(table_name, 128) as ad FROM data GROUP BY country ORDER BY ad DESC, country ASC LIMIT 8",
    "SELECT MIN(table_name), MAX(table_name) FROM data",
    # Expressions, multi-group-by, HAVING:
    "SELECT SUM(latency) / COUNT(*) as mean FROM data",
    "SELECT country, month(timestamp) as m, COUNT(*) as c FROM data GROUP BY country, m ORDER BY c DESC LIMIT 12",
    "SELECT country, COUNT(*) as c FROM data GROUP BY country HAVING c > 50 ORDER BY c ASC LIMIT 5",
    "SELECT hour(timestamp) as h, AVG(latency) as a FROM data GROUP BY h ORDER BY h ASC",
    # Computed restrictions (materialized expressions):
    "SELECT COUNT(*) FROM data WHERE contains(table_name, 'team01') = 1",
    "SELECT country, COUNT(*) as c FROM data WHERE date(timestamp) >= '2011-10-15' GROUP BY country ORDER BY c DESC LIMIT 5",
    # Projections:
    "SELECT country, latency FROM data WHERE latency > 2000 ORDER BY latency DESC LIMIT 9",
    # Empty results:
    "SELECT country, COUNT(*) FROM data WHERE country = 'XX' GROUP BY country",
    "SELECT COUNT(*), SUM(latency) FROM data WHERE country = 'XX'",
]

NULL_QUERIES = [
    "SELECT COUNT(*), COUNT(latency) FROM data",
    "SELECT country, SUM(latency) as s FROM data GROUP BY country ORDER BY s DESC LIMIT 5",
    "SELECT COUNT(*) FROM data WHERE latency IS NULL",
    "SELECT COUNT(*) FROM data WHERE latency IS NOT NULL AND latency > 300",
    "SELECT country, AVG(latency) as a FROM data GROUP BY country ORDER BY a DESC LIMIT 5",
    "SELECT COUNT(*) FROM data WHERE NOT latency > 100",
]


@pytest.fixture(scope="module")
def backends(log_table, tmp_path_factory):
    base = tmp_path_factory.mktemp("formats")
    csv_path = str(base / "t.csv")
    rio_path = str(base / "t.rio")
    cio_path = str(base / "t.cio")
    write_csv(log_table, csv_path)
    write_recordio(log_table, rio_path)
    write_columnio(log_table, cio_path)
    return [
        CsvBackend(csv_path, log_table.schema),
        RecordIoBackend(rio_path, log_table.schema),
        ColumnIoBackend(cio_path),
    ]


@pytest.fixture(scope="module")
def store_variants(log_table):
    partitioned = DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=150,
        reorder_rows=True,
    )
    unoptimized = DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=150,
        optimized_columns=False,
        optimized_dicts=False,
    )
    single_chunk = DataStoreOptions()
    return [
        DataStore.from_table(log_table, partitioned),
        DataStore.from_table(log_table, unoptimized),
        DataStore.from_table(log_table, single_chunk),
    ]


@pytest.fixture(scope="module")
def cluster(log_table):
    return SimulatedCluster.build(
        log_table,
        n_shards=5,
        store_options=DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=150,
            reorder_rows=True,
        ),
        config=ClusterConfig(n_machines=6, seed=11),
    )


@pytest.mark.parametrize("query", QUERIES, ids=range(len(QUERIES)))
def test_all_backends_agree(query, backends, store_variants, cluster):
    reference = backends[0].execute(query).rows()
    for backend in backends[1:]:
        assert_results_equal(
            backend.execute(query).rows(), reference, context=backend.name
        )
    for index, store in enumerate(store_variants):
        assert_results_equal(
            store.execute(query).rows(), reference, context=f"store[{index}]"
        )
        # Run again: the chunk-result cache must not change results.
        assert_results_equal(
            store.execute(query).rows(), reference, context=f"store[{index}] rerun"
        )
    result, __ = cluster.execute(query)
    assert_results_equal(result.rows(), reference, context="cluster")


@pytest.mark.parametrize("query", NULL_QUERIES, ids=range(len(NULL_QUERIES)))
def test_null_heavy_agreement(query, null_log_table, tmp_path):
    csv_path = str(tmp_path / "nulls.csv")
    write_csv(null_log_table, csv_path)
    reference = CsvBackend(csv_path, null_log_table.schema).execute(query).rows()
    store = DataStore.from_table(
        null_log_table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=150,
            reorder_rows=True,
        ),
    )
    assert_results_equal(store.execute(query).rows(), reference, context=query)
