"""Differential fuzzing: numpy codec kernels vs the frozen scalar oracles.

Every vectorized codec in :mod:`repro.compress` has a scalar twin
frozen in :mod:`repro.compress.reference` (the pre-vectorization
implementations). These tests hold the kernels to three contracts:

- **byte identity** — the kernel encoder produces *exactly* the oracle's
  bytes, so stores written before and after PR 5 are interchangeable;
- **round-trips** — kernel decode inverts kernel encode, and the
  decoders are interchangeable with the oracles in both directions;
- **resilience** — truncated or bit-flipped input makes every decoder
  raise :class:`~repro.errors.CompressionError`; it never crashes with
  an IndexError/ValueError and never loops.

Plus the per-codec :class:`~repro.compress.CompressionStats` published
by the registry wrappers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compress import (
    CompressionStats,
    all_compression_stats,
    compression_stats,
    get_codec,
    reset_compression_stats,
)
from repro.compress import reference
from repro.compress.varint import (
    decode_varint_stream,
    decode_zigzag_stream,
    encode_varint_array,
    encode_zigzag_array,
)
from repro.errors import CompressionError
from repro.monitoring import counters

_INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
_UINT64 = st.integers(min_value=0, max_value=2**64 - 1)

#: (codec name, oracle encode, oracle decode)
_ORACLES = [
    ("rle", reference.rle_encode_bytes, reference.rle_decode_bytes),
    ("zippy", reference.zippy_compress, reference.zippy_decompress),
    ("lzo", reference.lzo_compress, reference.lzo_decompress),
    ("huffman", reference.huffman_compress, reference.huffman_decompress),
]


def _runny(data: bytes, repeats: int) -> bytes:
    """Stretch fuzz input into run/match-rich data so copies/runs fire."""
    return data * repeats


class TestByteIdentity:
    @pytest.mark.parametrize("name,encode,decode", _ORACLES)
    @settings(max_examples=80, deadline=None)
    @given(data=st.binary(max_size=3000), repeats=st.integers(1, 4))
    def test_encode_identical_and_decoders_interchange(
        self, name, encode, decode, data, repeats
    ):
        data = _runny(data, repeats)
        codec = get_codec(name)
        kernel_blob = codec.compress(data)
        assert kernel_blob == encode(data)
        assert codec.decompress(kernel_blob) == data
        # Decoders are interchangeable in both directions.
        assert decode(kernel_blob) == data

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_UINT64, max_size=400))
    def test_varint_array_identical(self, values):
        arr = np.asarray(values, dtype=np.uint64)
        blob = encode_varint_array(arr)
        assert blob == b"".join(
            reference.encode_varint(v) for v in values
        )
        decoded, consumed = decode_varint_stream(blob, len(values), 0)
        assert consumed == len(blob)
        assert decoded.dtype == np.uint64
        assert decoded.tolist() == values

    @settings(max_examples=60, deadline=None)
    @given(st.lists(_INT64, max_size=400))
    def test_zigzag_array_identical(self, values):
        arr = np.asarray(values, dtype=np.int64)
        blob = encode_zigzag_array(arr)
        assert blob == b"".join(
            reference.encode_zigzag(v) for v in values
        )
        decoded, consumed = decode_zigzag_stream(blob, len(values), 0)
        assert consumed == len(blob)
        assert decoded.tolist() == values


class TestCorruptionResilience:
    """Truncation / bit flips raise CompressionError, never crash."""

    @pytest.mark.parametrize("name,encode,decode", _ORACLES)
    @settings(max_examples=60, deadline=None)
    @given(
        data=st.binary(min_size=1, max_size=600),
        cut=st.integers(0, 599),
        flip=st.integers(0, 599),
        bit=st.integers(0, 7),
    )
    def test_mangled_input_raises_or_decodes(
        self, name, encode, decode, data, cut, flip, bit
    ):
        codec = get_codec(name)
        blob = bytearray(codec.compress(data))
        blob[flip % len(blob)] ^= 1 << bit
        mangled = bytes(blob[: max(1, cut % (len(blob) + 1))])

        def outcome(fn):
            try:
                return fn(mangled)
            except CompressionError:
                return "error"

        kernel = outcome(codec.decompress)
        # Same corrupt bytes -> same result (or both reject): the
        # kernels may not accept streams the oracle rejects, nor the
        # reverse.
        assert kernel == outcome(decode)

    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(_INT64, min_size=1, max_size=50),
        cut=st.integers(0, 400),
    )
    def test_truncated_varint_stream_raises(self, values, cut):
        blob = encode_zigzag_array(np.asarray(values, dtype=np.int64))
        truncated = blob[: cut % len(blob)]
        with pytest.raises(CompressionError):
            decode_zigzag_stream(truncated, len(values), 0)


class TestCompressionStats:
    def setup_method(self):
        reset_compression_stats()

    def teardown_method(self):
        reset_compression_stats()

    def test_encode_decode_accounted(self):
        codec = get_codec("rle")
        raw = b"\x05" * 1000
        blob = codec.compress(raw)
        assert codec.decompress(blob) == raw
        stats = compression_stats("rle")
        assert stats.encode_calls == 1
        assert stats.encode_bytes_in == 1000
        assert stats.encode_bytes_out == len(blob)
        assert stats.decode_calls == 1
        assert stats.decode_bytes_out == 1000
        assert stats.compression_ratio == pytest.approx(1000 / len(blob))

    def test_codec_object_shares_live_stats(self):
        codec = get_codec("zippy")
        assert codec.stats is compression_stats("zippy")
        codec.compress(b"abc" * 50)
        assert codec.stats.encode_calls == 1
        reset_compression_stats()
        # Reset must not sever the Codec.stats reference.
        assert codec.stats is compression_stats("zippy")
        assert codec.stats.encode_calls == 0

    def test_decode_error_counted(self):
        counters.reset()
        codec = get_codec("zippy")
        with pytest.raises(CompressionError):
            codec.decompress(bytes([4, 0b01, 0xFF]))
        stats = compression_stats("zippy")
        assert stats.decode_errors == 1
        assert stats.decode_calls == 0  # failed calls are not successes
        assert counters.get("compress.zippy.decode_errors") == 1

    def test_counters_mirror(self):
        counters.reset()
        codec = get_codec("huffman")
        blob = codec.compress(b"skewed " * 100)
        codec.decompress(blob)
        snapshot = counters.snapshot()
        assert snapshot["compress.huffman.encode_calls"] == 1
        assert snapshot["compress.huffman.encode_bytes_in"] == 700
        assert snapshot["compress.huffman.decode_calls"] == 1
        assert snapshot["compress.huffman.decode_bytes_out"] == 700

    def test_all_compression_stats_covers_registry(self):
        stats = all_compression_stats()
        for name in ("none", "zippy", "lzo", "huffman", "rle"):
            assert isinstance(stats[name], CompressionStats)
            assert stats[name].name == name

    def test_unknown_codec_raises(self):
        with pytest.raises(CompressionError):
            compression_stats("gzip")

    def test_as_dict_round_trips_derived_rates(self):
        codec = get_codec("rle")
        codec.compress(b"\x01" * 500)
        payload = compression_stats("rle").as_dict()
        assert payload["name"] == "rle"
        assert payload["compression_ratio"] > 1.0
        assert payload["encode_mb_per_s"] >= 0.0
