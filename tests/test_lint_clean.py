"""The zero-findings CI gate: reprolint over ``src/repro`` must be clean.

This is a tier-1 test. Any new finding — a foreign exception type, a
broad except, a direct codec import, a cross-module private mutation,
a missing annotation in storage/core/formats, a stray print() — fails
the suite until it is fixed or explicitly suppressed with a
``# reprolint: disable=REP00x -- reason`` comment.
"""

import os

from repro.analysis import run_lint

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)


def test_source_tree_exists():
    assert os.path.isdir(_SRC), _SRC


def test_reprolint_clean():
    report = run_lint([_SRC])
    assert report.items_checked > 40, "lint walked suspiciously few files"
    assert report.ok, "\n" + report.to_text()


def test_cli_gate_exit_code():
    # The same gate through the CLI surface `repro lint` (exit 0 = clean).
    from repro.analysis.cli import cmd_lint

    import argparse

    namespace = argparse.Namespace(
        paths=[_SRC],
        format="text",
        select=None,
        severity=[],
        list_rules=False,
    )
    assert cmd_lint(namespace) == 0
