"""The zero-findings CI gate: reprolint over ``src/repro`` must be clean.

This is a tier-1 test. Any new finding — a foreign exception type, a
broad except, a direct codec import, a cross-module private mutation,
a missing annotation in storage/core/formats, a stray print(), or a
violation of the process-parallel contract (REP011 — REP015: captured
writes in executor submissions, impure ``chunk_partial`` closures,
hash-ordered merge iteration, frombuffer-view mutation, unpicklable
captures) — fails the suite until it is fixed or explicitly suppressed
with a ``# reprolint: disable=REP00x -- reason`` comment. Stale
suppressions fail the gate too (REP016 runs on full passes).
"""

import os

from repro.analysis import all_rules, run_lint

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)

_CONCURRENCY_RULES = ["REP011", "REP012", "REP013", "REP014", "REP015"]


def test_source_tree_exists():
    assert os.path.isdir(_SRC), _SRC


def test_reprolint_clean():
    report = run_lint([_SRC])
    assert report.items_checked > 40, "lint walked suspiciously few files"
    assert report.ok, "\n" + report.to_text()


def test_gate_includes_concurrency_rules():
    # The full run above only certifies REP011-REP015 if they are
    # actually registered; pin that so dropping a rule fails loudly.
    registered = {rule.code for rule in all_rules()}
    assert set(_CONCURRENCY_RULES) <= registered


def test_gate_includes_bounded_wait_rule():
    # REP017 keeps core/executor.py free of unbounded .result()/.join()
    # waits — the supervision deadline is only real while this rule is
    # registered, so pin it like the concurrency rules above.
    registered = {rule.code for rule in all_rules()}
    assert "REP017" in registered


def test_gate_includes_service_queue_rule():
    # REP019 keeps repro/service/* free of unbounded queues — the
    # admission-control contract (explicit QueryRejected, never silent
    # queue growth) is only real while this rule is registered.
    registered = {rule.code for rule in all_rules()}
    assert "REP019" in registered


def test_concurrency_rules_clean_standalone():
    # Also run the process-parallel certification on its own: a
    # selective run exercises the ProjectRule path (call-graph build,
    # submission-site discovery) without the module rules' findings
    # masking an interprocedural regression.
    report = run_lint([_SRC], select=_CONCURRENCY_RULES)
    assert report.ok, "\n" + report.to_text()


def test_cli_gate_exit_code():
    # The same gate through the CLI surface `repro lint` (exit 0 = clean).
    from repro.analysis.cli import cmd_lint

    import argparse

    namespace = argparse.Namespace(
        paths=[_SRC],
        format="text",
        json=False,
        select=None,
        severity=[],
        list_rules=False,
    )
    assert cmd_lint(namespace) == 0
