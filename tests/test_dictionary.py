"""Global dictionary tests: ranks, nulls, ranges, tuple dictionaries."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import DictionaryError
from repro.storage.dictionary import (
    NumericDictionary,
    SortedStringDictionary,
    SortedTupleDictionary,
    build_dictionary,
)


class TestStringDictionary:
    def test_rank_and_value(self):
        d = SortedStringDictionary(["amazon", "cheap flights", "ebay"])
        assert d.global_id("ebay") == 2
        assert d.value(0) == "amazon"
        assert d.global_id("yahoo") is None

    def test_unsorted_rejected(self):
        with pytest.raises(DictionaryError):
            SortedStringDictionary(["b", "a"])

    def test_duplicates_rejected(self):
        with pytest.raises(DictionaryError):
            SortedStringDictionary(["a", "a"])

    def test_ids_are_ranks(self):
        values = ["a", "bb", "c", "dd", "e"]
        d = SortedStringDictionary(values)
        assert [d.global_id(v) for v in values] == list(range(5))
        assert d.values() == values

    def test_null_takes_id_zero(self):
        d = build_dictionary(["b", None, "a"])
        assert d.has_null
        assert d.global_id(None) == 0
        assert d.value(0) is None
        assert d.global_id("a") == 1
        assert len(d) == 3

    def test_contains(self):
        d = build_dictionary(["x", "y"])
        assert "x" in d
        assert "z" not in d
        assert None not in d

    def test_out_of_range_id(self):
        d = build_dictionary(["x"])
        with pytest.raises(DictionaryError):
            d.value(5)

    def test_gid_range_operators(self):
        d = SortedStringDictionary(["b", "d", "f"])
        assert d.gid_range("<", "d") == (0, 1)
        assert d.gid_range("<=", "d") == (0, 2)
        assert d.gid_range(">", "d") == (2, 3)
        assert d.gid_range(">=", "d") == (1, 3)
        # Absent probe value between entries:
        assert d.gid_range("<", "c") == (0, 1)
        assert d.gid_range(">=", "g") == (3, 3)

    def test_gid_range_with_null_offset(self):
        d = build_dictionary([None, "b", "d"])
        # NULL never matches a comparison: intervals start at id 1.
        assert d.gid_range(">=", "b") == (1, 3)
        assert d.gid_range("<", "d") == (1, 2)


class TestNumericDictionary:
    def test_int_ranks(self):
        d = NumericDictionary(np.array([3, 7, 10], dtype=np.int64))
        assert d.global_id(7) == 1
        assert d.global_id(8) is None
        assert d.value(2) == 10
        assert isinstance(d.value(2), int)

    def test_float_values(self):
        d = NumericDictionary(np.array([1.5, 2.5], dtype=np.float64))
        assert d.global_id(2.5) == 1
        assert isinstance(d.value(0), float)

    def test_int_literal_matches_float_entry(self):
        d = NumericDictionary(np.array([2.0, 3.5], dtype=np.float64))
        assert d.global_id(2) == 0

    def test_unsorted_rejected(self):
        with pytest.raises(DictionaryError):
            NumericDictionary(np.array([3, 1], dtype=np.int64))

    def test_optimized_packing_size(self):
        values = np.arange(1000, 1256, dtype=np.int64)  # span 255 -> 1 byte
        plain = NumericDictionary(values, optimized=False)
        packed = NumericDictionary(values, optimized=True)
        assert plain.size_bytes() == 8 * 256
        assert packed.size_bytes() == 8 + 256  # base + 1 byte each

    def test_optimized_round_trip_values(self):
        values = np.array([-50, 0, 7, 123456], dtype=np.int64)
        d = NumericDictionary(values, optimized=True)
        assert [d.value(i) for i in range(4)] == values.tolist()
        assert len(d.to_bytes()) == 8 + 4 * 4  # span needs 4 bytes

    def test_min_max(self):
        d = NumericDictionary(np.array([3, 9], dtype=np.int64))
        assert d.min_value() == 3
        assert d.max_value() == 9

    def test_gid_range(self):
        d = NumericDictionary(np.array([10, 20, 30], dtype=np.int64))
        assert d.gid_range(">", 15) == (1, 3)
        assert d.gid_range("<=", 30) == (0, 3)

    def test_bool_is_not_numeric(self):
        d = NumericDictionary(np.array([0, 1], dtype=np.int64))
        assert d.global_id(True) is None


class TestTupleDictionary:
    def test_ranks(self):
        values = [("DE", 1), ("DE", 2), ("US", 1)]
        d = SortedTupleDictionary(values)
        assert d.global_id(("DE", 2)) == 1
        assert d.value(2) == ("US", 1)
        assert d.global_id(("FR", 1)) is None

    def test_none_inside_tuples_sorts_first(self):
        values = [(None, 5), ("a", 1)]
        d = SortedTupleDictionary(values)
        assert d.global_id((None, 5)) == 0

    def test_unsorted_rejected(self):
        with pytest.raises(DictionaryError):
            SortedTupleDictionary([("b",), ("a",)])


class TestBuildDictionary:
    def test_infers_string(self):
        d = build_dictionary(["b", "a", "b"])
        assert d.kind == "string"
        assert d.values() == ["a", "b"]

    def test_infers_numeric(self):
        d = build_dictionary([3, 1, 2, 3])
        assert d.kind == "numeric"
        assert d.values() == [1, 2, 3]

    def test_mixed_int_float(self):
        d = build_dictionary([1, 2.5])
        assert d.values() == [1.0, 2.5]

    def test_optimized_string_is_trie(self):
        d = build_dictionary(["b", "a"], optimized=True)
        assert d.kind == "trie"
        assert d.values() == ["a", "b"]

    def test_mixed_types_rejected(self):
        with pytest.raises(DictionaryError):
            build_dictionary(["a", 1])

    def test_empty_column(self):
        d = build_dictionary([])
        assert len(d) == 0

    def test_all_null_column(self):
        d = build_dictionary([None, None])
        assert len(d) == 1
        assert d.value(0) is None

    @given(st.sets(st.text(max_size=8), max_size=40))
    def test_rank_bijection_property(self, values):
        d = build_dictionary(values)
        ordered = sorted(values)
        assert d.values() == ordered
        for index, value in enumerate(ordered):
            assert d.global_id(value) == index
            assert d.value(index) == value

    @given(st.sets(st.integers(min_value=-10000, max_value=10000), max_size=40))
    def test_numeric_rank_bijection_property(self, values):
        d = build_dictionary(values)
        ordered = sorted(values)
        for index, value in enumerate(ordered):
            assert d.global_id(value) == index
            assert d.value(index) == value
