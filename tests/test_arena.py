"""The shared-memory chunk arena: ARENA1 layout, round-trips, lifecycle.

The arena is the zero-copy substrate of the process-pool executor:
every original field's global dictionary, chunk-dictionaries and
elements are materialized once into one page-aligned segment, and
attached stores answer queries from read-only numpy views over it.
These tests pin the contracts DESIGN.md states: bit-exact round-trip
(the FSCK011 invariant), read-only views (the runtime face of REP014),
shareable handles that rebuild a working store, the mmap cold-store
path, and a no-leak lifecycle.
"""

from __future__ import annotations

import os

import pytest

from repro.core.datastore import DataStore
from repro.errors import StorageError
from repro.storage.arena import (
    SEGMENT_PREFIX,
    ChunkArena,
    attach_store,
    live_segment_names,
    load_arena_store,
    save_arena,
    verify_arena,
)
from tests.conftest import make_store

_QUERIES = (
    "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
    "ORDER BY c DESC LIMIT 8",
    "SELECT table_name, SUM(latency) AS s, MIN(latency) AS lo "
    "FROM data GROUP BY table_name ORDER BY s DESC LIMIT 10",
    "SELECT COUNT(*) AS c FROM data WHERE country = 'US'",
    "SELECT date(timestamp) AS d, COUNT(*) AS c FROM data "
    "GROUP BY d ORDER BY c DESC LIMIT 7",
)


def _rows(store: DataStore, sql: str):
    return store.execute(sql).sorted_rows()


class TestArenaRoundTrip:
    def test_verify_arena_clean_on_real_store(self, log_store):
        assert verify_arena(log_store) == []

    def test_verify_arena_clean_with_nulls(self, null_store):
        assert verify_arena(null_store) == []

    def test_attached_store_answers_identically(self, log_table):
        store = make_store(log_table)
        with ChunkArena.build(store, kind="shm") as arena:
            attached = arena.attached_store()
            for sql in _QUERIES:
                assert _rows(attached, sql) == _rows(store, sql), sql

    def test_attach_by_handle_rebuilds_store(self, log_table):
        store = make_store(log_table)
        with ChunkArena.build(store, kind="shm") as arena:
            attached = attach_store(arena.handle())
            assert attached.n_rows == store.n_rows
            sql = _QUERIES[0]
            assert _rows(attached, sql) == _rows(store, sql)
            # The per-process cache hands back the same store object.
            assert attach_store(arena.handle()) is attached

    def test_attached_views_are_read_only(self, log_table):
        store = make_store(log_table)
        with ChunkArena.build(store, kind="shm") as arena:
            attached = arena.attached_store()
            chunk = attached.field("country").chunks[0]
            with pytest.raises(ValueError, match="read-only"):
                chunk.chunk_dict[0] = 1

    def test_virtual_fields_stay_out_of_the_arena(self, log_table):
        store = make_store(log_table)
        store.execute(_QUERIES[3])  # materializes date(timestamp)
        assert any(field.virtual for field in store.fields.values())
        with ChunkArena.build(store, kind="local") as arena:
            attached = arena.attached_store()
            assert not any(f.virtual for f in attached.fields.values())
            # ... and the attached store re-derives them on demand.
            assert _rows(attached, _QUERIES[3]) == _rows(store, _QUERIES[3])


class TestMmapColdStore:
    def test_save_load_round_trip(self, log_table, tmp_path):
        store = make_store(log_table)
        path = str(tmp_path / "logs.arena")
        written = save_arena(store, path)
        assert written == os.path.getsize(path)
        attached = load_arena_store(path)
        assert attached.arena.kind == "mmap"
        for sql in _QUERIES:
            assert _rows(attached, sql) == _rows(store, sql), sql
        # Releasing an mmap arena never deletes the caller's file.
        attached.arena.release()
        assert os.path.exists(path)

    def test_cold_store_larger_than_memory_budget(self, log_table, tmp_path):
        # The paging premise: the arena file is big relative to a small
        # hot budget, yet queries stream in whatever pages they touch.
        store = make_store(log_table)
        path = str(tmp_path / "big.arena")
        written = save_arena(store, path)
        assert written > 64 * 1024  # several fields x page-aligned sections
        attached = load_arena_store(path)
        sql = (
            "SELECT user_name, COUNT(DISTINCT table_name) AS t FROM data "
            "GROUP BY user_name ORDER BY t DESC LIMIT 5"
        )
        assert _rows(attached, sql) == _rows(store, sql)
        attached.arena.release()

    def test_corrupt_file_raises_storage_error(self, tmp_path):
        path = str(tmp_path / "junk.arena")
        with open(path, "wb") as handle:
            handle.write(b"not an arena" * 400)
        with pytest.raises(StorageError):
            load_arena_store(path)


class TestArenaLifecycle:
    def test_release_unlinks_segment(self, log_table):
        store = make_store(log_table)
        arena = ChunkArena.build(store, kind="shm")
        name = arena.name
        assert name in live_segment_names()
        assert os.path.exists(f"/dev/shm/{name}")
        arena.release()
        assert name not in live_segment_names()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_release_is_idempotent(self, log_table):
        store = make_store(log_table)
        arena = ChunkArena.build(store, kind="shm")
        arena.release()
        arena.release()  # second release must not raise

    def test_attachment_close_leaves_segment_for_owner(self, log_table):
        store = make_store(log_table)
        arena = ChunkArena.build(store, kind="shm")
        try:
            reader = ChunkArena.attach(arena.handle())
            assert not reader.is_owner
            reader.release()
            # A reader releasing must never unlink the owner's segment.
            assert os.path.exists(f"/dev/shm/{arena.name}")
        finally:
            arena.release()
        assert not os.path.exists(f"/dev/shm/{arena.name}")

    def test_segment_names_carry_the_repro_prefix(self, log_table):
        store = make_store(log_table)
        with ChunkArena.build(store, kind="shm") as arena:
            assert arena.name.startswith(SEGMENT_PREFIX)


class TestFsckArenaInvariant:
    def test_fsck_runs_arena_check(self, log_store):
        from repro.analysis.fsck import fsck_store

        report = fsck_store(log_store)
        assert report.ok
        assert not [f for f in report.findings if f.code == "FSCK011"]
