"""Property tests: the vectorized import pipeline is byte-identical.

The vectorized kernels (typed factorize, bulk trie build, dtype-inferred
numeric dictionaries) must serialize to exactly the same PDS2 stream as
``build_reference_store`` — the frozen replica of the pre-vectorization
scalar pipeline. Hypothesis drives the corpora that historically break
encoders: NULL-heavy, duplicate-heavy, empty, single-value and
non-ASCII columns, mixed int/float, NUL bytes inside strings.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import Column, DataType, Table
from repro.partition.codes import factorize_list, _factorize_scalar_list
from repro.storage.dictionary import build_dictionary
from repro.storage.subdict import SubDictionarySet
from repro.storage.trie import (
    _bulk_trie_bytes,
    reference_trie_bytes,
)
from repro.workload.benchimport import (
    build_reference_store,
    serialized_store_bytes,
)
from repro.analysis.fsck import fsck_store

# Alphabet mixes ASCII, a NUL byte, multi-byte UTF-8 and an astral
# plane character so trie nibble packing sees every phase.
_TEXT = st.text(alphabet="ab0\x00日本\U0001f600 _%'", max_size=8)

_strings = st.one_of(_TEXT, st.none())
_ints = st.one_of(
    st.integers(min_value=-(2**61), max_value=2**61), st.none()
)
_floats = st.one_of(
    st.floats(allow_nan=False, allow_infinity=False),
    st.none(),
)
_mixed_numbers = st.one_of(_ints, _floats)


def _duplicate_heavy(element_strategy):
    """Columns drawn from a tiny pool, so most rows repeat a value."""

    @st.composite
    def inner(draw):
        pool = draw(
            st.lists(element_strategy, min_size=1, max_size=4)
        )
        n = draw(st.integers(min_value=1, max_value=50))
        return [draw(st.sampled_from(pool)) for __ in range(n)]

    return inner()


@st.composite
def _import_tables(draw):
    n_rows = draw(st.integers(min_value=0, max_value=50))

    def column(strategy):
        return draw(
            st.lists(strategy, min_size=n_rows, max_size=n_rows)
        )

    # "single-value" corpus: constant column, NULL or not.
    constant = draw(st.one_of(_TEXT, st.none()))
    return Table(
        [
            Column("s", column(_strings), DataType.STRING),
            Column("n", column(_ints), DataType.INT),
            Column("f", column(_mixed_numbers), DataType.FLOAT),
            Column("c", [constant] * n_rows, DataType.STRING),
        ]
    )


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    _import_tables(),
    st.booleans(),
    st.sampled_from([None, ("s",), ("s", "n")]),
)
def test_store_bytes_match_reference(table, optimized, partition_fields):
    options = DataStoreOptions(
        partition_fields=partition_fields,
        max_chunk_rows=7,
        reorder_rows=partition_fields is not None,
        optimized_columns=optimized,
        optimized_dicts=optimized,
    )
    store = DataStore.from_table(table, options)
    reference = build_reference_store(table, options)
    assert serialized_store_bytes(store) == serialized_store_bytes(reference)
    assert fsck_store(store).ok
    assert store.import_stats is not None
    assert store.import_stats.rows == table.n_rows


@settings(max_examples=60, deadline=None)
@given(
    st.one_of(
        st.lists(_strings, max_size=60),
        st.lists(_ints, max_size=60),
        st.lists(_mixed_numbers, max_size=60),
        _duplicate_heavy(_strings),
        _duplicate_heavy(_mixed_numbers),
    )
)
def test_factorize_matches_scalar(values):
    codes, ordered = factorize_list(values)
    ref_codes, ref_ordered = _factorize_scalar_list(values)
    np.testing.assert_array_equal(codes, ref_codes)
    assert codes.dtype == ref_codes.dtype
    assert ordered == ref_ordered
    # 2 vs 2.0 compare equal; the representative's *type* must match.
    assert [type(v) for v in ordered] == [type(v) for v in ref_ordered]


@settings(max_examples=60, deadline=None)
@given(st.lists(_TEXT, max_size=40, unique=True))
def test_bulk_trie_bytes_match_reference(values):
    values = sorted(values)
    assert _bulk_trie_bytes(values) == reference_trie_bytes(values)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(_strings, max_size=40),
    st.lists(_strings, max_size=20),
    st.booleans(),
)
def test_global_ids_batch_matches_scalar(values, probes, optimized):
    dictionary = build_dictionary(values, optimized=optimized)
    # Mix of present and absent probe values.
    probes = probes + values[:5]
    batch = dictionary.global_ids(probes)
    scalar = [dictionary.global_id(value) for value in probes]
    assert batch == scalar


@settings(max_examples=30, deadline=None)
@given(
    st.lists(_duplicate_heavy(_TEXT), min_size=1, max_size=4),
    st.booleans(),
)
def test_subdict_entries_cover_chunks(chunks, optimized):
    all_values = sorted({v for chunk in chunks for v in chunk})
    dictionary = build_dictionary(all_values, optimized=optimized)
    chunk_gids = [
        np.unique(
            np.asarray(
                [gid for gid in dictionary.global_ids(chunk)],
                dtype=np.int64,
            )
        )
        for chunk in chunks
    ]
    subdicts = SubDictionarySet(dictionary, chunk_gids)
    # Every chunk's values must be reachable through its sub-dictionaries,
    # and the id -> value mapping must agree with the global dictionary.
    for index, chunk in enumerate(chunks):
        for value in set(chunk):
            gid = subdicts.lookup_global_id(value, active_chunks={index})
            assert gid == dictionary.global_id(value)
            assert subdicts.lookup_value(gid) == value
