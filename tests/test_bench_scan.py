"""Smoke tests for ``repro bench scan`` and its runtime flags.

The full sweep lives in ``benchmarks/bench_parallel_scan.py``; here we
only prove the CLI surface works end to end at a tiny scale: the
subcommand runs, writes parseable JSON with the trajectory fields, and
the ``--workers`` / ``--cache-policy`` query flags actually reconfigure
the store.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.formats import write_csv


class TestBenchScanCli:
    def test_smoke_run_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "BENCH_PR2.json")
        code = main(
            [
                "bench", "scan",
                "--rows", "2000",
                "--workers", "2",
                "--policies", "lru,arc",
                "--repeats", "1",
                "--trace-steps", "16",
                "--output", out,
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "parallel == serial results: yes" in printed
        report = json.loads(open(out, encoding="utf-8").read())
        assert report["bench"] == "parallel_scan"
        assert report["results_identical_to_serial"] is True
        assert [p["workers"] for p in report["sweep"]] == [2]
        assert {e["policy"] for e in report["cache_policies"]} == {"lru", "arc"}
        for entry in report["cache_policies"]:
            assert entry["resident_bytes"] <= entry["capacity_bytes"]

    def test_unknown_bench_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "warp"])


class TestQueryRuntimeFlags:
    @pytest.fixture()
    def store_path(self, log_table, tmp_path):
        csv = str(tmp_path / "logs.csv")
        write_csv(log_table, csv)
        out = str(tmp_path / "s.pds")
        assert (
            main(
                [
                    "import", csv, out,
                    "--partition", "country,table_name",
                    "--chunk-rows", "300",
                ]
            )
            == 0
        )
        return out

    def test_query_with_runtime_flags(self, store_path, capsys):
        code = main(
            [
                "query", store_path,
                "SELECT country, COUNT(*) AS c FROM data "
                "GROUP BY country ORDER BY c DESC LIMIT 3",
                "--workers", "4",
                "--cache-policy", "arc",
                "--cache-capacity-kb", "256",
            ]
        )
        assert code == 0
        assert "rows in" in capsys.readouterr().out

    def test_bad_cache_policy_rejected(self, store_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", store_path,
                    "SELECT COUNT(*) FROM data",
                    "--cache-policy", "fifo",
                ]
            )

    def test_demo_reports_cache_counters(self, capsys):
        assert main(["demo", "--rows", "1500", "--workers", "2"]) == 0
        assert "chunk-result cache:" in capsys.readouterr().out
