"""Cache policy tests — LRU, 2Q, ARC (Section 5 "Improved Cache Heuristics")."""

import pytest

from repro.errors import StorageError
from repro.storage.cache import ArcCache, LruCache, TwoQCache, make_cache


class TestLru:
    def test_hit_and_miss_counting(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_evicts_least_recent(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_weighted_capacity(self):
        cache = LruCache(100)
        cache.put("big", "x", weight=80)
        cache.put("small", "y", weight=30)  # 110 > 100: evict big
        assert "big" not in cache
        assert cache.used == 30

    def test_update_replaces_weight(self):
        cache = LruCache(100)
        cache.put("k", "v", weight=60)
        cache.put("k", "v2", weight=10)
        assert cache.used == 10
        assert cache.get("k") == "v2"

    def test_scan_evicts_working_set(self):
        # The known LRU weakness the paper works around: a one-time
        # scan wipes the hot entry.
        cache = LruCache(10)
        cache.put("hot", 1)
        cache.get("hot")
        for i in range(20):
            cache.put(f"scan-{i}", i)
        assert "hot" not in cache


class TestTwoQ:
    def test_scan_resistance(self):
        # 2Q protects the hot set: keys promoted into Am via the ghost
        # list survive scans, which only churn the A1in FIFO.
        cache = TwoQCache(10, in_fraction=0.2)
        cache.put("hot", 1)
        for i in range(5):
            cache.put(f"warm-{i}", i)  # pushes "hot" into the ghost list
        cache.put("hot", 1)  # ghost hit -> Am
        for i in range(100):
            cache.put(f"scan-{i}", i)
        assert cache.get("hot") == 1

    def test_promotion_via_ghost(self):
        cache = TwoQCache(4, in_fraction=0.25)
        cache.put("x", 1)  # A1in (capacity 1)
        cache.put("y", 2)  # x evicted to ghost
        assert "x" not in cache
        cache.put("x", 10)  # ghost hit: promoted into Am
        for i in range(10):
            cache.put(f"s{i}", i)
        assert cache.get("x") == 10

    def test_capacity_respected(self):
        cache = TwoQCache(5)
        for i in range(50):
            cache.put(i, i)
        assert cache.used <= 5

    def test_invalid_in_fraction(self):
        with pytest.raises(StorageError):
            TwoQCache(10, in_fraction=1.5)


class TestArc:
    def test_second_access_promotes(self):
        cache = ArcCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1  # promoted T1 -> T2
        for i in range(3):
            cache.put(f"x{i}", i)
        assert cache.get("a") == 1  # survived the T1 churn

    def test_scan_resistance(self):
        cache = ArcCache(8)
        cache.put("hot", 1)
        cache.get("hot")  # now in T2
        for i in range(100):
            cache.put(f"scan-{i}", i)
        assert cache.get("hot") == 1

    def test_ghost_hit_adapts_target(self):
        cache = ArcCache(4)
        for i in range(8):
            cache.put(f"k{i}", i)
        before = cache.recency_target
        # Re-inserting an evicted key is a B1 ghost hit -> p grows.
        cache.put("k0", 0)
        assert cache.recency_target >= before

    def test_capacity_respected(self):
        cache = ArcCache(6)
        for i in range(60):
            cache.put(i, i, weight=1.5)
        assert cache.used <= 6 + 1.5  # at most one overweight entry


class TestFactory:
    @pytest.mark.parametrize("policy", ["lru", "2q", "arc"])
    def test_make_cache(self, policy):
        cache = make_cache(policy, 10)
        assert cache.name == policy

    def test_unknown_policy(self):
        with pytest.raises(StorageError):
            make_cache("fifo", 10)

    def test_nonpositive_capacity(self):
        with pytest.raises(StorageError):
            LruCache(0)


class TestHitRates:
    def test_zipf_workload_arc_and_2q_beat_lru_with_scans(self):
        """The Section 5 motivation: scans shouldn't trash the cache."""
        import random

        rng = random.Random(5)
        policies = {name: make_cache(name, 50) for name in ("lru", "2q", "arc")}
        hot_keys = [f"hot-{i}" for i in range(30)]
        scan_id = 0
        for step in range(4000):
            if step % 40 == 39:
                # Periodic one-time scan of 100 cold keys.
                for __ in range(100):
                    scan_id += 1
                    for cache in policies.values():
                        if cache.get(f"cold-{scan_id}") is None:
                            cache.put(f"cold-{scan_id}", 1)
            key = rng.choice(hot_keys)
            for cache in policies.values():
                if cache.get(key) is None:
                    cache.put(key, 1)
        lru_rate = policies["lru"].stats.hit_rate
        assert policies["2q"].stats.hit_rate > lru_rate
        assert policies["arc"].stats.hit_rate > lru_rate
