"""Shared fixtures: a small synthetic log table and stores over it."""

from __future__ import annotations

import glob
import os

import pytest

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import Table
from repro.storage.arena import SEGMENT_PREFIX, live_segment_names
from repro.workload.generator import LogsConfig, generate_query_logs

SMALL_ROWS = 4_000


def _shm_segments() -> set[str]:
    """Names of this prefix's shared-memory segments currently on disk."""
    pattern = os.path.join("/dev/shm", SEGMENT_PREFIX + "*")
    return {os.path.basename(path) for path in glob.glob(pattern)}


@pytest.fixture(scope="session", autouse=True)
def no_leaked_arena_segments():
    """Session gate: the suite must not leak shared-memory segments.

    Any ``repro_arena_*`` segment that appears during the run and is
    neither tracked by a live in-process arena (module-level stores
    release theirs at atexit, after this fixture) nor gone by teardown
    was leaked by an executor — the exact failure mode the PR 8
    supervision layer exists to prevent, even across SIGKILLed workers.
    """
    if not os.path.isdir("/dev/shm"):
        yield  # non-Linux: no observable segment directory to audit
        return
    baseline = _shm_segments()
    yield
    leaked = (_shm_segments() - baseline) - set(live_segment_names())
    assert not leaked, (
        f"test run leaked shared-memory segments: {sorted(leaked)}"
    )


@pytest.fixture(scope="session", autouse=True)
def no_leaked_query_services():
    """Session gate: every QueryService started in the suite is closed.

    A live service holds dispatch threads and a registration in
    :func:`repro.service.live_services`; one left running after its
    test keeps daemon threads spinning against a possibly-torn-down
    store. Tests must close services explicitly (or use them as
    context managers) — this fixture makes a leak a suite failure.
    """
    from repro.service import live_services

    yield
    leaked = live_services()
    assert not leaked, (
        f"test run leaked {len(leaked)} running QueryService(s); "
        "close() them or use the context-manager form"
    )


@pytest.fixture(scope="session")
def log_table() -> Table:
    """A small deterministic PowerDrill-style log table."""
    return generate_query_logs(
        LogsConfig(n_rows=SMALL_ROWS, n_days=30, n_teams=12, seed=99)
    )


@pytest.fixture(scope="session")
def null_log_table() -> Table:
    """Same shape but with NULL latencies mixed in."""
    return generate_query_logs(
        LogsConfig(
            n_rows=SMALL_ROWS,
            n_days=30,
            n_teams=12,
            seed=77,
            null_latency_fraction=0.07,
        )
    )


def make_store(table: Table, **overrides) -> DataStore:
    """Build a partitioned, optimized datastore over ``table``."""
    options = DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=max(64, table.n_rows // 40),
        reorder_rows=True,
        **overrides,
    )
    return DataStore.from_table(table, options)


@pytest.fixture(scope="session")
def log_store(log_table) -> DataStore:
    return make_store(log_table)


@pytest.fixture(scope="session")
def basic_store(log_table) -> DataStore:
    """The 'Basic' configuration: one chunk, canonical encodings."""
    return DataStore.from_table(
        log_table,
        DataStoreOptions(
            partition_fields=None,
            optimized_columns=False,
            optimized_dicts=False,
        ),
    )


@pytest.fixture(scope="session")
def null_store(null_log_table) -> DataStore:
    return make_store(null_log_table)
