"""Format backend tests: CSV, record-io, column-io round trips and scans."""

import pytest

from repro.core.table import DataType, Schema, Table
from repro.errors import TableError
from repro.formats import (
    ColumnIoBackend,
    CsvBackend,
    RecordIoBackend,
    read_columnio,
    read_csv,
    read_recordio,
    write_columnio,
    write_csv,
    write_recordio,
)
from repro.sql.parser import parse_query


@pytest.fixture()
def tricky_table() -> Table:
    return Table.from_columns(
        {
            "s": ["plain", "with,comma", 'with"quote', "with\nnewline", None, "\\N"],
            "i": [0, -5, 2**40, None, 7, 9],
            "f": [1.5, -0.25, None, 3.0, 1e-9, 2.0],
        }
    )


class TestCsv:
    def test_round_trip(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.csv")
        write_csv(tricky_table, path)
        assert read_csv(path, tricky_table.schema) == tricky_table

    def test_null_vs_literal_backslash_n(self, tmp_path):
        table = Table.from_columns({"s": [None, "\\N", "x"]})
        path = str(tmp_path / "t.csv")
        write_csv(table, path)
        assert read_csv(path, table.schema) == table

    def test_header_mismatch_rejected(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.csv")
        write_csv(tricky_table, path)
        wrong = Schema([("other", DataType.STRING)])
        backend = CsvBackend(path, wrong)
        with pytest.raises(TableError):
            list(backend.scan_rows(None))

    def test_memory_is_file_size(self, tricky_table, tmp_path):
        import os

        path = str(tmp_path / "t.csv")
        write_csv(tricky_table, path)
        backend = CsvBackend(path, tricky_table.schema)
        query = parse_query("SELECT s FROM data")
        assert backend.memory_bytes(query) == os.path.getsize(path)

    def test_rows_total(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.csv")
        write_csv(tricky_table, path)
        assert CsvBackend(path, tricky_table.schema).rows_total() == 6


class TestRecordIo:
    def test_round_trip(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.rio")
        write_recordio(tricky_table, path)
        assert read_recordio(path, tricky_table.schema) == tricky_table

    def test_negative_ints_zigzag(self, tmp_path):
        table = Table.from_columns({"i": [-1, -(2**40), 0, 2**40]})
        path = str(tmp_path / "t.rio")
        write_recordio(table, path)
        assert read_recordio(path, table.schema) == table

    def test_smaller_than_csv(self, tmp_path):
        import random

        random.seed(0)
        table = Table.from_columns(
            {"n": [random.randrange(1000) for __ in range(2000)]}
        )
        csv_size = write_csv(table, str(tmp_path / "t.csv"))
        rio_size = write_recordio(table, str(tmp_path / "t.rio"))
        assert rio_size < csv_size

    def test_truncated_file_rejected(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.rio")
        write_recordio(tricky_table, path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:-3])
        backend = RecordIoBackend(path, tricky_table.schema)
        with pytest.raises(Exception):
            list(backend.scan_rows(None))


class TestColumnIo:
    def test_round_trip(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.cio")
        write_columnio(tricky_table, path)
        assert read_columnio(path) == tricky_table

    def test_multiple_blocks(self, tmp_path):
        table = Table.from_columns({"n": list(range(1000))})
        path = str(tmp_path / "t.cio")
        write_columnio(table, path, block_rows=64)
        assert read_columnio(path) == table

    def test_reads_only_referenced_columns(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.cio")
        write_columnio(tricky_table, path)
        backend = ColumnIoBackend(path)
        narrow = backend.memory_bytes(parse_query("SELECT i FROM data"))
        wide = backend.memory_bytes(
            parse_query("SELECT s, i, f FROM data")
        )
        assert narrow < wide
        assert narrow == backend.column_compressed_bytes("i")

    def test_alternative_codec(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.cio")
        write_columnio(tricky_table, path, codec="lzo")
        assert read_columnio(path) == tricky_table

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bad.cio")
        open(path, "wb").write(b"NOPE....")
        with pytest.raises(TableError):
            ColumnIoBackend(path)

    def test_unknown_column_rejected(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.cio")
        write_columnio(tricky_table, path)
        with pytest.raises(TableError):
            ColumnIoBackend(path).read_column("zz")

    def test_schema_preserved(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.cio")
        write_columnio(tricky_table, path)
        assert ColumnIoBackend(path).schema == tricky_table.schema


class TestBackendExecution:
    def test_wrong_table_name(self, tricky_table, tmp_path):
        from repro.errors import ExecutionError

        path = str(tmp_path / "t.csv")
        write_csv(tricky_table, path)
        backend = CsvBackend(path, tricky_table.schema)
        with pytest.raises(ExecutionError):
            backend.execute("SELECT COUNT(*) FROM wrong")

    def test_stats_reflect_full_scan(self, tricky_table, tmp_path):
        path = str(tmp_path / "t.csv")
        write_csv(tricky_table, path)
        backend = CsvBackend(path, tricky_table.schema)
        result = backend.execute("SELECT COUNT(*) FROM data")
        assert result.stats.rows_scanned == tricky_table.n_rows
        assert result.stats.cells_scanned == tricky_table.n_cells
