"""Varint / zigzag wire-encoding tests."""

import pytest
from hypothesis import given, strategies as st

from repro.compress.varint import (
    decode_varint,
    decode_zigzag,
    encode_varint,
    encode_zigzag,
)
from repro.errors import CompressionError


class TestVarint:
    def test_zero_is_one_byte(self):
        assert encode_varint(0) == b"\x00"

    def test_small_values_one_byte(self):
        for value in (1, 17, 127):
            assert len(encode_varint(value)) == 1

    def test_128_takes_two_bytes(self):
        assert len(encode_varint(128)) == 2

    def test_round_trip_boundaries(self):
        for value in (0, 1, 127, 128, 16383, 16384, 2**32, 2**63 - 1):
            encoded = encode_varint(value)
            decoded, pos = decode_varint(encoded)
            assert decoded == value
            assert pos == len(encoded)

    def test_decode_from_offset(self):
        data = b"\xff" + encode_varint(300)
        value, pos = decode_varint(data, 1)
        assert value == 300
        assert pos == len(data)

    def test_negative_rejected(self):
        with pytest.raises(CompressionError):
            encode_varint(-1)

    def test_truncated_raises(self):
        with pytest.raises(CompressionError):
            decode_varint(b"\x80")

    def test_empty_raises(self):
        with pytest.raises(CompressionError):
            decode_varint(b"")

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_round_trip_property(self, value):
        decoded, __ = decode_varint(encode_varint(value))
        assert decoded == value


class TestZigzag:
    def test_alternating_mapping(self):
        # zigzag maps 0,-1,1,-2,2... to 0,1,2,3,4...
        assert encode_zigzag(0) == b"\x00"
        assert encode_zigzag(-1) == b"\x01"
        assert encode_zigzag(1) == b"\x02"
        assert encode_zigzag(-2) == b"\x03"

    def test_round_trip_boundaries(self):
        for value in (0, -1, 1, -(2**31), 2**31, -(2**62), 2**62):
            decoded, __ = decode_zigzag(encode_zigzag(value))
            assert decoded == value

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_round_trip_property(self, value):
        decoded, __ = decode_zigzag(encode_zigzag(value))
        assert decoded == value
