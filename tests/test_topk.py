"""Top-k fast-path tests: it must be invisible except for speed.

The shortcut selects the LIMIT k groups from aggregate values and
group global-ids *before* looking up group values in the dictionary.
These tests pin the trickiest equivalences: ties, descending string
keys (not invertible -> fallback), NULL aggregate values (fallback),
HAVING (fallback), and composite groups (fallback).
"""

import pytest

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import Table
from repro.formats.rowexec import execute_on_rows
from repro.sql.parser import parse_query
from repro.testing import assert_results_equal


def _store(data: dict) -> tuple[DataStore, Table]:
    table = Table.from_columns(data)
    return (
        DataStore.from_table(
            table,
            DataStoreOptions(partition_fields=("g",), max_chunk_rows=4),
        ),
        table,
    )


def _check(store: DataStore, table: Table, sql: str) -> None:
    parsed = parse_query(sql)
    expected = execute_on_rows(parsed, table.schema, table.iter_rows())
    assert_results_equal(
        store.execute(parsed).rows(), list(expected.iter_rows()), context=sql
    )


class TestTies:
    def test_all_counts_equal(self):
        store, table = _store(
            {"g": ["d", "b", "a", "c", "e", "f"], "x": [1, 2, 3, 4, 5, 6]}
        )
        # Every group has count 1: the tie-break (group value ascending)
        # decides which two survive LIMIT 2.
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "ORDER BY c DESC LIMIT 2"
        ))

    def test_partial_ties_at_the_cut(self):
        store, table = _store(
            {
                "g": ["a", "a", "b", "b", "c", "d", "e"],
                "x": [1] * 7,
            }
        )
        # counts: a=2, b=2, c=1, d=1, e=1; LIMIT 4 cuts through the
        # count-1 tie between c, d, e.
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "ORDER BY c DESC LIMIT 4"
        ))

    def test_ascending_order_ties(self):
        store, table = _store(
            {"g": ["a", "b", "c", "a", "b", "c"], "x": [1, 1, 1, 2, 2, 2]}
        )
        _check(store, table, (
            "SELECT g, SUM(x) as s FROM data GROUP BY g "
            "ORDER BY s ASC LIMIT 2"
        ))


class TestFallbackPaths:
    def test_descending_string_key_falls_back(self):
        store, table = _store(
            {"g": ["a", "b", "c"], "name": ["zz", "mm", "aa"]}
        )
        # MIN(name) is a string: not invertible for DESC -> general path.
        _check(store, table, (
            "SELECT g, MIN(name) as m FROM data GROUP BY g "
            "ORDER BY m DESC LIMIT 2"
        ))

    def test_null_aggregate_falls_back(self):
        store, table = _store(
            {"g": ["a", "a", "b"], "x": [None, None, 5]}
        )
        # SUM over all-NULL group 'a' is NULL: ordering needs NULL
        # placement -> general path.
        _check(store, table, (
            "SELECT g, SUM(x) as s FROM data GROUP BY g "
            "ORDER BY s DESC LIMIT 2"
        ))

    def test_having_falls_back(self):
        store, table = _store(
            {"g": ["a", "a", "b", "c"], "x": [1, 1, 1, 1]}
        )
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "HAVING c > 1 ORDER BY c DESC LIMIT 1"
        ))

    def test_composite_group_falls_back(self):
        store, table = _store(
            {
                "g": ["a", "a", "b", "b"],
                "x": [1, 2, 1, 2],
            }
        )
        _check(store, table, (
            "SELECT g, x, COUNT(*) as c FROM data GROUP BY g, x "
            "ORDER BY c DESC LIMIT 3"
        ))

    def test_order_by_group_expression_falls_back(self):
        store, table = _store(
            {"g": ["ab", "cd", "ef"], "x": [1, 2, 3]}
        )
        # upper(g) needs the group value -> general path.
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "ORDER BY upper(g) DESC LIMIT 2"
        ))


class TestFastPathOrdering:
    def test_order_by_group_alias_ascending(self):
        """ORDER BY the group column itself: gid order == value order."""
        store, table = _store(
            {"g": ["m", "a", "z", "k"], "x": [1, 2, 3, 4]}
        )
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "ORDER BY g ASC LIMIT 3"
        ))

    def test_order_by_group_descending(self):
        store, table = _store(
            {"g": ["m", "a", "z", "k"], "x": [1, 2, 3, 4]}
        )
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "ORDER BY g DESC LIMIT 2"
        ))

    def test_expression_over_aggregates_as_key(self):
        store, table = _store(
            {"g": ["a", "a", "b", "b", "b", "c"], "x": [10, 20, 1, 2, 3, 9]}
        )
        _check(store, table, (
            "SELECT g, SUM(x) / COUNT(*) as mean FROM data GROUP BY g "
            "ORDER BY mean DESC LIMIT 2"
        ))

    def test_limit_larger_than_groups(self):
        store, table = _store({"g": ["a", "b"], "x": [1, 2]})
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "ORDER BY c DESC LIMIT 50"
        ))

    def test_limit_one(self):
        store, table = _store(
            {"g": ["a", "b", "b"], "x": [1, 2, 3]}
        )
        _check(store, table, (
            "SELECT g, COUNT(*) as c FROM data GROUP BY g "
            "ORDER BY c DESC LIMIT 1"
        ))
