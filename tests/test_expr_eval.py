"""Reference expression evaluator tests (three-valued logic)."""

import pytest

from repro.core.expr_eval import evaluate, truthy
from repro.errors import ExecutionError, UnsupportedQueryError
from repro.sql.ast_nodes import Aggregate, Star
from repro.sql.parser import parse_query


def _eval(clause: str, **row):
    expr = parse_query(f"SELECT x FROM t WHERE {clause}").where
    return evaluate(expr, lambda name: row.get(name))


def _eval_select(expr_sql: str, **row):
    expr = parse_query(f"SELECT {expr_sql} FROM t").select[0].expr
    return evaluate(expr, lambda name: row.get(name))


class TestComparisons:
    def test_basics(self):
        assert _eval("a = 1", a=1) is True
        assert _eval("a != 1", a=2) is True
        assert _eval("a < 2", a=1) is True
        assert _eval("a >= 2", a=1) is False

    def test_string_comparison(self):
        assert _eval("s < 'b'", s="a") is True

    def test_null_comparisons_are_null(self):
        assert _eval("a = 1", a=None) is None
        assert _eval("a < 1", a=None) is None

    def test_cross_type_comparison_raises(self):
        with pytest.raises(ExecutionError):
            _eval("a = 'x'", a=1)


class TestLogic:
    def test_kleene_and(self):
        assert _eval("a = 1 AND b = 1", a=1, b=1) is True
        assert _eval("a = 1 AND b = 1", a=2, b=None) is False
        assert _eval("a = 1 AND b = 1", a=1, b=None) is None

    def test_kleene_or(self):
        assert _eval("a = 1 OR b = 1", a=2, b=None) is None
        assert _eval("a = 1 OR b = 1", a=1, b=None) is True

    def test_not(self):
        assert _eval("NOT a = 1", a=2) is True
        assert _eval("NOT a = 1", a=None) is None

    def test_truthy_collapses_null(self):
        assert truthy(None) is False
        assert truthy(True) is True
        assert truthy(0) is False
        assert truthy(2) is True

    def test_truthy_string_raises(self):
        with pytest.raises(ExecutionError):
            truthy("yes")


class TestInList:
    def test_membership(self):
        assert _eval("a IN (1, 2)", a=2) is True
        assert _eval("a IN (1, 2)", a=3) is False
        assert _eval("a NOT IN (1, 2)", a=3) is True

    def test_null_operand_is_null(self):
        assert _eval("a IN (1, 2)", a=None) is None

    def test_is_null_rewrite_matches_null(self):
        assert _eval("a IS NULL", a=None) is True
        assert _eval("a IS NULL", a=1) is False
        assert _eval("a IS NOT NULL", a=1) is True
        assert _eval("a IS NOT NULL", a=None) is False

    def test_type_strictness(self):
        # int 1 should not match string '1'.
        assert _eval("a IN ('1')", a=1) is False

    def test_int_matches_float(self):
        assert _eval("a IN (1)", a=1.0) is True


class TestArithmetic:
    def test_operations(self):
        assert _eval_select("a + b * 2", a=1, b=3) == 7
        assert _eval_select("-a", a=5) == -5
        assert _eval_select("a / 4", a=10) == 2.5

    def test_null_propagates(self):
        assert _eval_select("a + 1", a=None) is None

    def test_division_by_zero_is_null(self):
        assert _eval_select("a / 0", a=1) is None

    def test_string_arithmetic_raises(self):
        with pytest.raises(ExecutionError):
            _eval_select("a + 1", a="x")

    def test_unary_minus_on_string_raises(self):
        with pytest.raises(ExecutionError):
            _eval_select("-a", a="x")


class TestFunctions:
    def test_nested_calls(self):
        assert _eval_select("upper(substr(s, 0, 2))", s="hello") == "HE"

    def test_function_null_propagation(self):
        assert _eval_select("date(ts)", ts=None) is None


class TestErrors:
    def test_star_outside_count(self):
        with pytest.raises(UnsupportedQueryError):
            evaluate(Star(), lambda name: None)

    def test_aggregate_in_scalar_context(self):
        with pytest.raises(UnsupportedQueryError):
            evaluate(Aggregate("COUNT", Star()), lambda name: None)
