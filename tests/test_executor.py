"""The execution-strategy layer: parallel == serial, cache bounded.

The tentpole guarantees of the executor rework, tested head-on:

- **Determinism**: a parallel store returns bit-identical rows and
  identical ScanStats counters to a serial store for arbitrary query
  sequences at arbitrary worker counts (hypothesis-driven);
- **Bounded cache**: the chunk-result cache never exceeds its byte
  budget, evicts under pressure, still serves hits, and is invalidated
  when a virtual field materializes (new signatures would otherwise
  alias stale chunk layouts).
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.executor import (
    ParallelExecutor,
    ProcessExecutor,
    SerialExecutor,
    default_worker_count,
    executor_names,
    make_executor,
)
from repro.errors import ExecutionError
from repro.sql.parser import parse_query
from repro.testing import CapturedStateMutation, SanitizingExecutor
from repro.workload.generator import LogsConfig, generate_query_logs

_TABLE = generate_query_logs(
    LogsConfig(n_rows=700, n_days=10, n_teams=5, seed=47, null_latency_fraction=0.05)
)


def _build(**overrides) -> DataStore:
    options = DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=48,
        reorder_rows=True,
        **overrides,
    )
    return DataStore.from_table(_TABLE, options)


# Both stores see the exact same query sequence, so their cache states
# must evolve identically; only the executor differs.
_SERIAL = _build()
_PARALLEL = _build(executor="parallel", workers=4)

_QUERIES = st.sampled_from(
    [
        "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
        "ORDER BY c DESC LIMIT 8",
        "SELECT table_name, SUM(latency) AS s, MIN(latency) AS lo "
        "FROM data GROUP BY table_name ORDER BY s DESC LIMIT 10",
        "SELECT user_name, COUNT(DISTINCT table_name) AS t FROM data "
        "GROUP BY user_name ORDER BY t DESC LIMIT 5",
        "SELECT country, AVG(latency) AS a FROM data "
        "WHERE latency > 100 GROUP BY country ORDER BY a ASC LIMIT 6",
        "SELECT date(timestamp) AS d, COUNT(*) AS c FROM data "
        "GROUP BY d ORDER BY c DESC LIMIT 7",
        "SELECT COUNT(*) AS c FROM data WHERE country = 'US'",
        "SELECT month(timestamp) AS m, MAX(latency) AS hi, "
        "APPROX_COUNT_DISTINCT(user_name, 64) AS u FROM data "
        "GROUP BY m ORDER BY hi DESC LIMIT 4",
        "SELECT COUNT(latency) AS c FROM data WHERE latency IS NOT NULL",
    ]
)


def _counter_fields(stats) -> dict:
    """ScanStats minus the timing fields (timings are measurement)."""
    return {
        f.name: getattr(stats, f.name)
        for f in dataclasses.fields(stats)
        if not f.name.endswith("_seconds")
    }


class TestParallelMatchesSerial:
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        queries=st.lists(_QUERIES, min_size=1, max_size=4),
        workers=st.integers(min_value=2, max_value=6),
    )
    def test_rows_and_counters_identical(self, queries, workers):
        _PARALLEL.configure_runtime(executor="parallel", workers=workers)
        for sql in queries:
            serial = _SERIAL.execute(sql)
            parallel = _PARALLEL.execute(sql)
            assert serial.rows() == parallel.rows(), sql
            assert _counter_fields(serial.stats) == _counter_fields(
                parallel.stats
            ), sql

    def test_parallel_store_actually_fans_out(self):
        store = _build(executor="parallel", workers=4)
        assert isinstance(store.executor, ParallelExecutor)
        assert "parallel" in store.executor.describe()

    def test_projection_queries_match(self):
        sql = (
            "SELECT country, latency FROM data WHERE latency > 800 "
            "ORDER BY latency DESC LIMIT 12"
        )
        assert _SERIAL.execute(sql).rows() == _PARALLEL.execute(sql).rows()


class TestExecutorPrimitives:
    def test_registry(self):
        assert executor_names() == ["parallel", "process", "serial", "thread"]
        assert isinstance(make_executor("serial", None), SerialExecutor)
        assert isinstance(make_executor("parallel", 2), ParallelExecutor)
        assert isinstance(make_executor("thread", 2), ParallelExecutor)
        assert isinstance(make_executor("process", 2), ProcessExecutor)
        assert default_worker_count() >= 1

    def test_max_workers_caps_default(self):
        assert default_worker_count(max_workers=1) == 1
        assert default_worker_count(max_workers=10_000) == (os.cpu_count() or 1)
        with pytest.raises(ExecutionError):
            default_worker_count(max_workers=0)

    def test_make_executor_honours_max_workers(self):
        executor = make_executor("parallel", None, 1)
        try:
            assert executor.workers == 1
        finally:
            executor.close()

    def test_unknown_name_raises(self):
        with pytest.raises(ExecutionError):
            make_executor("gpu", None)

    def test_invalid_worker_count_raises(self):
        with pytest.raises(ExecutionError):
            make_executor("parallel", 0)

    def test_map_ordered_preserves_submission_order(self):
        executor = make_executor("parallel", 4)
        try:
            # Make later items finish first: ordering must come from
            # submission order, not completion order.
            def slow_inverse(item: int) -> int:
                time.sleep((8 - item) * 0.002)
                return item * item

            assert executor.map_ordered(slow_inverse, range(8)) == [
                i * i for i in range(8)
            ]
        finally:
            executor.close()

    def test_map_ordered_runs_concurrently(self):
        executor = make_executor("parallel", 4)
        barrier = threading.Barrier(4, timeout=5.0)
        try:
            # All four tasks must be in flight at once to pass the
            # barrier; a serial fallback would deadlock (timeout).
            assert executor.map_ordered(
                lambda i: barrier.wait() is not None, range(4)
            ) == [True] * 4
        finally:
            executor.close()

    def test_serial_map_ordered(self):
        executor = make_executor("serial", None)
        assert executor.map_ordered(lambda x: x + 1, [3, 1, 2]) == [4, 2, 3]

    def test_worker_exceptions_propagate(self):
        executor = make_executor("parallel", 2)
        try:
            with pytest.raises(ZeroDivisionError):
                executor.map_ordered(lambda x: 1 // x, [1, 0, 1])
        finally:
            executor.close()


class TestSanitizingExecutor:
    """The runtime half of the process-parallel certification: every
    object ``scan_one`` closes over is fingerprinted before and after
    each fan-out, so an engine regression that mutates shared store
    state from a worker fails here even if the static rules miss it."""

    def test_store_scans_pass_sanitizer(self):
        store = _build(executor="parallel", workers=4)
        store.executor = SanitizingExecutor(store.executor)
        for sql in (
            "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
            "ORDER BY c DESC LIMIT 8",
            "SELECT table_name, SUM(latency) AS s, MIN(latency) AS lo "
            "FROM data GROUP BY table_name ORDER BY s DESC LIMIT 10",
            "SELECT user_name, COUNT(DISTINCT table_name) AS t FROM data "
            "GROUP BY user_name ORDER BY t DESC LIMIT 5",
            "SELECT month(timestamp) AS m, MAX(latency) AS hi FROM data "
            "GROUP BY m ORDER BY hi DESC LIMIT 4",
        ):
            assert store.execute(sql).rows() == _SERIAL.execute(sql).rows(), sql
        assert store.executor.checked_submissions >= 4
        # scan_one closes over the store itself plus per-query scan
        # state; zero captures would mean the sanitizer checked nothing.
        assert store.executor.checked_captures > 0
        store.executor.close()

    def test_catches_closure_mutation(self):
        executor = SanitizingExecutor(make_executor("parallel", 4))
        seen: list[int] = []

        def bad(item: int) -> int:
            seen.append(item)
            return item

        try:
            with pytest.raises(CapturedStateMutation, match="seen"):
                executor.map_ordered(bad, [1, 2, 3])
        finally:
            executor.close()

    def test_catches_bound_method_mutation(self):
        class Accumulator:
            def __init__(self) -> None:
                self.total = 0

            def add(self, item: int) -> int:
                self.total += item
                return item

        executor = SanitizingExecutor(make_executor("serial", None))
        with pytest.raises(CapturedStateMutation, match="self.total"):
            executor.map_ordered(Accumulator().add, [1, 2, 3])

    def test_pure_closures_pass(self):
        executor = SanitizingExecutor(make_executor("parallel", 2))
        offsets = {"a": 10}

        def pure(item: int) -> int:
            return item + offsets["a"]

        try:
            assert executor.map_ordered(pure, [1, 2]) == [11, 12]
            assert executor.checked_submissions == 1
            assert executor.checked_captures == 1
        finally:
            executor.close()


class TestBoundedChunkCache:
    def _pressure_queries(self):
        groups = ("country", "table_name", "user_name")
        aggs = ("COUNT(*)", "SUM(latency)", "MIN(latency)", "MAX(latency)")
        return [
            f"SELECT {g}, {a} AS v FROM data GROUP BY {g} LIMIT 5"
            for g in groups
            for a in aggs
        ]

    def test_cache_never_exceeds_capacity(self):
        capacity = 16 * 1024.0
        store = _build(cache_capacity_bytes=capacity)
        for sql in self._pressure_queries():
            store.execute(sql)
            assert store.chunk_cache.used <= capacity
        stats = store.chunk_cache_stats()
        assert stats.evictions > 0

    def test_hits_survive_eviction_pressure(self):
        store = _build(cache_capacity_bytes=24 * 1024.0)
        hot = (
            "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
            "ORDER BY c DESC LIMIT 5"
        )
        for sql in self._pressure_queries()[:4]:
            store.execute(hot)
            store.execute(hot)  # immediate re-reference: must hit
            store.execute(sql)
        assert store.chunk_cache_stats().hits > 0
        assert store.chunk_cache_stats().evictions > 0

    @pytest.mark.parametrize("policy", ["lru", "2q", "arc"])
    def test_every_policy_bounds_and_serves(self, policy):
        store = _build(cache_policy=policy, cache_capacity_bytes=20 * 1024.0)
        sql = (
            "SELECT country, COUNT(*) AS c FROM data GROUP BY country "
            "ORDER BY c DESC LIMIT 5"
        )
        before = store.execute(sql).stats.rows_cached
        after = store.execute(sql).stats.rows_cached
        assert before == 0 and after > 0
        assert store.chunk_cache.used <= 20 * 1024.0

    def test_materialization_invalidates_cache(self):
        store = _build()
        store.execute("SELECT country, COUNT(*) AS c FROM data GROUP BY country")
        assert len(store.chunk_cache) > 0
        expr = parse_query("SELECT date(timestamp) FROM data").select[0].expr
        store.ensure_field(expr)
        assert len(store.chunk_cache) == 0
        # The *next* identical query misses, recomputes, then hits again.
        first = store.execute(
            "SELECT country, COUNT(*) AS c FROM data GROUP BY country"
        )
        second = store.execute(
            "SELECT country, COUNT(*) AS c FROM data GROUP BY country"
        )
        assert first.stats.rows_cached == 0
        assert second.stats.rows_cached > 0

    def test_cache_disabled_stays_empty(self):
        store = _build(cache_chunk_results=False)
        sql = "SELECT country, COUNT(*) AS c FROM data GROUP BY country"
        store.execute(sql)
        store.execute(sql)
        assert len(store.chunk_cache) == 0
        assert store.chunk_cache_stats().hits == 0

    def test_configure_runtime_rebuilds_cache(self):
        store = _build()
        store.execute("SELECT country, COUNT(*) AS c FROM data GROUP BY country")
        assert len(store.chunk_cache) > 0
        store.configure_runtime(cache_policy="arc")
        assert len(store.chunk_cache) == 0
        assert store.options.cache_policy == "arc"

    def test_configure_runtime_swaps_executor(self):
        store = _build()
        assert isinstance(store.executor, SerialExecutor)
        store.configure_runtime(executor="parallel", workers=3)
        assert isinstance(store.executor, ParallelExecutor)
        sql = "SELECT country, COUNT(*) AS c FROM data GROUP BY country"
        assert store.execute(sql).rows() == _SERIAL.execute(sql).rows()


class TestScanStatsTimings:
    def test_phase_timings_populated(self):
        result = _SERIAL.execute(
            "SELECT table_name, COUNT(*) AS c FROM data GROUP BY table_name "
            "ORDER BY c DESC LIMIT 5"
        )
        stats = result.stats
        assert stats.restriction_seconds >= 0.0
        assert stats.scan_seconds + stats.merge_seconds > 0.0

    def test_projection_timing_populated(self):
        result = _SERIAL.execute(
            "SELECT country, latency FROM data WHERE latency > 900 LIMIT 5"
        )
        assert result.stats.projection_seconds > 0.0
