"""Element-encoding tests — the Section 3 "OptCols" table behaviour."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import EncodingError
from repro.storage.elements import (
    BitsetElements,
    ConstantElements,
    PackedElements,
    encode_elements,
    width_for,
)


class TestWidthSelection:
    def test_boundaries(self):
        assert width_for(1) == 1
        assert width_for(256) == 1
        assert width_for(257) == 2
        assert width_for(65536) == 2
        assert width_for(65537) == 4

    def test_too_large(self):
        with pytest.raises(EncodingError):
            width_for(2**33)


class TestEncodeSelection:
    def test_one_distinct_constant(self):
        e = encode_elements(np.zeros(100, dtype=np.uint32), 1)
        assert isinstance(e, ConstantElements)
        # "This gives a constant O(1) overhead independent of n."
        assert e.size_bytes() == 8

    def test_two_distinct_bitset(self):
        ids = np.array([0, 1, 1, 0, 1] * 100, dtype=np.uint32)
        e = encode_elements(ids, 2)
        assert isinstance(e, BitsetElements)
        # "in case there are two distinct values ... ceil(n/8) bytes"
        assert e.size_bytes() == (len(ids) + 7) // 8

    @pytest.mark.parametrize(
        "n_distinct,width", [(3, 1), (256, 1), (257, 2), (65536, 2), (65537, 4)]
    )
    def test_packed_widths(self, n_distinct, width):
        ids = np.array([0, 1, 2], dtype=np.uint32)
        e = encode_elements(ids, n_distinct)
        assert isinstance(e, PackedElements)
        assert e.width == width
        assert e.size_bytes() == 3 * width

    def test_unoptimized_always_four_bytes(self):
        # The "Basic" data-structures: 32-bit ints regardless.
        ids = np.array([0, 1, 0], dtype=np.uint32)
        e = encode_elements(ids, 2, optimized=False)
        assert isinstance(e, PackedElements)
        assert e.width == 4

    def test_id_exceeding_dictionary_rejected(self):
        with pytest.raises(EncodingError):
            encode_elements(np.array([5], dtype=np.uint32), 3)


class TestRoundTrips:
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=0, max_value=260),
    )
    def test_encode_decode_property(self, n_distinct, n_rows):
        rng = np.random.default_rng(n_distinct * 1000 + n_rows)
        ids = rng.integers(0, n_distinct, size=n_rows).astype(np.uint32)
        e = encode_elements(ids, n_distinct)
        assert e.n_rows == n_rows
        assert e.as_array().tolist() == ids.tolist()

    def test_getitem_matches_array(self):
        ids = np.array([0, 2, 1, 2, 0], dtype=np.uint32)
        for n_distinct in (3, 300, 70000):
            e = encode_elements(ids, n_distinct)
            assert [e[i] for i in range(5)] == ids.tolist()

    def test_constant_getitem_bounds(self):
        e = ConstantElements(3, 0)
        with pytest.raises(EncodingError):
            e[3]

    def test_bitset_rejects_large_ids(self):
        with pytest.raises(EncodingError):
            BitsetElements.from_ids(np.array([0, 2], dtype=np.uint32))

    def test_to_bytes_lengths(self):
        ids = np.arange(10, dtype=np.uint32)
        assert len(encode_elements(ids, 200).to_bytes()) == 10
        assert len(encode_elements(ids, 300).to_bytes()) == 20
        assert len(encode_elements(ids, 70000).to_bytes()) == 40


class TestDenseCache:
    def _encodings(self):
        return [
            ConstantElements(5, 3),
            BitsetElements.from_ids(np.array([0, 1, 1, 0], dtype=np.uint32)),
            PackedElements(np.array([0, 2, 1], dtype=np.uint32), 1),
        ]

    def test_as_array_returns_cached_object(self):
        for elements in self._encodings():
            first = elements.as_array()
            assert elements.as_array() is first

    def test_getitem_never_materializes_dense(self):
        for elements, expected in zip(self._encodings(), (3, 1, 2)):
            assert elements[1] == expected
            assert elements._dense is None
