"""Row reordering and Hamming-path tests — Section 3 / Figures 2-4."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.table import Table
from repro.errors import PartitionError
from repro.partition.hamming import (
    hamming_distance,
    hamming_path_length,
    rle_counter_total,
)
from repro.partition.reorder import (
    lexicographic_order,
    nearest_neighbor_order,
    reorder_table,
)


class TestLexicographicOrder:
    def test_sorts_by_field_order(self):
        table = Table.from_columns(
            {"a": ["y", "x", "x"], "b": [1, 2, 1]}
        )
        order = lexicographic_order(table, ["a", "b"])
        reordered = reorder_table(table, order)
        assert list(reordered.iter_rows()) == [("x", 1), ("x", 2), ("y", 1)]

    def test_stable_for_ties(self):
        table = Table.from_columns({"a": ["x", "x", "x"], "b": [3, 1, 2]})
        order = lexicographic_order(table, ["a"])
        assert order.tolist() == [0, 1, 2]

    def test_nulls_first(self):
        table = Table.from_columns({"a": ["b", None, "a"]})
        order = lexicographic_order(table, ["a"])
        assert reorder_table(table, order).column("a").values == [None, "a", "b"]

    def test_requires_fields(self):
        table = Table.from_columns({"a": [1]})
        with pytest.raises(PartitionError):
            lexicographic_order(table, [])
        with pytest.raises(PartitionError):
            lexicographic_order(table, ["zz"])

    def test_reorder_size_mismatch(self):
        table = Table.from_columns({"a": [1, 2]})
        with pytest.raises(PartitionError):
            reorder_table(table, np.array([0]))

    def test_reordering_improves_rle(self):
        # The Figure 2 effect: sorting shrinks run-length encodings.
        import random

        from repro.compress.rle import rle_encode_ints

        random.seed(6)
        values = [random.choice("abcd") for __ in range(400)]
        table = Table.from_columns({"a": values})
        order = lexicographic_order(table, ["a"])
        codes = {"a": 0, "b": 1, "c": 2, "d": 3}
        before = len(rle_encode_ints([codes[v] for v in values]))
        after = len(
            rle_encode_ints(
                [codes[v] for v in reorder_table(table, order).column("a").values]
            )
        )
        assert after == 4  # one run per distinct value
        assert after < before


class TestHamming:
    def test_distance(self):
        a = np.array([0, 1, 1, 0])
        b = np.array([1, 1, 0, 0])
        assert hamming_distance(a, b) == 2

    def test_distance_shape_mismatch(self):
        with pytest.raises(PartitionError):
            hamming_distance(np.array([0]), np.array([0, 1]))

    def test_path_length(self):
        matrix = np.array([[0, 0], [0, 1], [1, 1]])
        assert hamming_path_length(matrix) == 2
        assert hamming_path_length(matrix, np.array([0, 2, 1])) == 3

    def test_figure3_identity(self):
        """RLE counter total == n_columns + Hamming path length."""
        rng = np.random.default_rng(1)
        matrix = (rng.random((40, 6)) < 0.5).astype(np.uint8)
        assert rle_counter_total(matrix) == 6 + hamming_path_length(matrix)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=1, max_value=30), st.integers(min_value=1, max_value=8))
    def test_figure3_identity_property(self, rows, cols):
        rng = np.random.default_rng(rows * 100 + cols)
        matrix = (rng.random((rows, cols)) < 0.4).astype(np.uint8)
        assert rle_counter_total(matrix) == cols + hamming_path_length(matrix)

    def test_reorder_never_changes_identity(self):
        rng = np.random.default_rng(2)
        matrix = (rng.random((30, 5)) < 0.5).astype(np.uint8)
        order = nearest_neighbor_order(matrix, block_rows=None)
        assert rle_counter_total(matrix, order) == 5 + hamming_path_length(
            matrix, order
        )


class TestNearestNeighbor:
    def test_is_permutation(self):
        rng = np.random.default_rng(3)
        matrix = (rng.random((50, 8)) < 0.5).astype(np.uint8)
        order = nearest_neighbor_order(matrix, block_rows=None)
        assert sorted(order.tolist()) == list(range(50))

    def test_improves_random_matrix(self):
        rng = np.random.default_rng(4)
        matrix = (rng.random((120, 10)) < 0.3).astype(np.uint8)
        order = nearest_neighbor_order(matrix, block_rows=None)
        assert hamming_path_length(matrix, order) < hamming_path_length(matrix)

    def test_blocked_mode_is_permutation(self):
        rng = np.random.default_rng(5)
        matrix = (rng.random((100, 6)) < 0.5).astype(np.uint8)
        order = nearest_neighbor_order(matrix, block_rows=32)
        assert sorted(order.tolist()) == list(range(100))

    def test_empty_matrix(self):
        assert nearest_neighbor_order(np.zeros((0, 4))).size == 0

    def test_rejects_non_2d(self):
        with pytest.raises(PartitionError):
            nearest_neighbor_order(np.zeros(5))
