"""Parser tests for the PowerDrill SQL dialect."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.ast_nodes import (
    Aggregate,
    BinaryOp,
    FieldRef,
    FuncCall,
    InList,
    Literal,
    Star,
    UnaryOp,
    referenced_fields,
)
from repro.sql.parser import parse_query
from repro.workload.queries import paper_queries


class TestPaperQueries:
    def test_query_1(self):
        query = parse_query(paper_queries()[0])
        assert query.table == "data"
        assert query.group_by == (FieldRef("country"),)
        assert query.limit == 10
        assert query.order_by[0].descending

    def test_query_2(self):
        query = parse_query(paper_queries()[1])
        assert query.select[0].expr == FuncCall("date", (FieldRef("timestamp"),))
        assert query.select[0].alias == "date"
        assert isinstance(query.select[2].expr, Aggregate)

    def test_section_2_4_example(self):
        query = parse_query(
            "SELECT search_string, COUNT(*) as c FROM data "
            "WHERE search_string IN ('la redoute', 'voyages sncf') "
            "GROUP BY search_string ORDER BY c DESC LIMIT 10;"
        )
        assert query.where == InList(
            FieldRef("search_string"), ("la redoute", "voyages sncf")
        )


class TestExpressions:
    def _where(self, clause: str):
        return parse_query(f"SELECT x FROM t WHERE {clause}").where

    def test_precedence_or_and(self):
        expr = self._where("a = 1 OR b = 2 AND c = 3")
        assert isinstance(expr, BinaryOp) and expr.op == "OR"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "AND"

    def test_not_binds_tighter_than_and(self):
        expr = self._where("NOT a = 1 AND b = 2")
        assert expr.op == "AND"
        assert isinstance(expr.left, UnaryOp)

    def test_arithmetic_precedence(self):
        expr = parse_query("SELECT a + b * c FROM t").select[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses(self):
        expr = parse_query("SELECT (a + b) * c FROM t").select[0].expr
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = parse_query("SELECT -a FROM t").select[0].expr
        assert expr == UnaryOp("-", FieldRef("a"))

    def test_in_list_literals(self):
        expr = self._where("x IN (1, -2, 'three', NULL)")
        assert expr.values == (1, -2, "three", None)

    def test_not_in(self):
        expr = self._where("x NOT IN (1)")
        assert expr.negated

    def test_in_rejects_expressions(self):
        with pytest.raises(SqlSyntaxError):
            self._where("x IN (a + 1)")

    def test_is_null_rewrite(self):
        expr = self._where("x IS NULL")
        assert expr == InList(FieldRef("x"), (None,), negated=False)

    def test_is_not_null_rewrite(self):
        expr = self._where("x IS NOT NULL")
        assert expr == InList(FieldRef("x"), (None,), negated=True)

    def test_comparison_flip_forms(self):
        assert self._where("1 < x").op == "<"

    def test_contains_function(self):
        expr = self._where("contains(s, 'cat') = 1")
        assert expr.left == FuncCall("contains", (FieldRef("s"), Literal("cat")))


class TestAggregates:
    def test_count_star(self):
        agg = parse_query("SELECT COUNT(*) FROM t").select[0].expr
        assert agg == Aggregate("COUNT", Star())

    def test_count_distinct(self):
        agg = parse_query("SELECT COUNT(DISTINCT x) FROM t").select[0].expr
        assert agg.distinct and not agg.approximate

    def test_approx_default_m(self):
        agg = parse_query("SELECT APPROX_COUNT_DISTINCT(x) FROM t").select[0].expr
        assert agg.approximate and agg.m == 4096

    def test_approx_custom_m(self):
        agg = parse_query("SELECT APPROX_COUNT_DISTINCT(x, 128) FROM t").select[0].expr
        assert agg.m == 128

    def test_expression_around_aggregate(self):
        expr = parse_query("SELECT SUM(x) / COUNT(*) FROM t").select[0].expr
        assert expr.op == "/"
        assert isinstance(expr.left, Aggregate)

    def test_unknown_function_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT frobnicate(x) FROM t")


class TestClauses:
    def test_implicit_alias(self):
        query = parse_query("SELECT country c FROM t")
        assert query.select[0].alias == "c"

    def test_multi_group_by(self):
        query = parse_query("SELECT a, b, COUNT(*) FROM t GROUP BY a, b")
        assert len(query.group_by) == 2

    def test_having(self):
        query = parse_query("SELECT a, COUNT(*) c FROM t GROUP BY a HAVING c > 5")
        assert query.having is not None

    def test_order_by_multiple_keys(self):
        query = parse_query("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert [item.descending for item in query.order_by] == [True, False]

    def test_limit_must_be_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t LIMIT 2.5")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t EXTRA")

    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a")

    def test_semicolon_optional(self):
        assert parse_query("SELECT a FROM t;") == parse_query("SELECT a FROM t")


class TestCanonicalSql:
    @pytest.mark.parametrize("sql", paper_queries())
    def test_round_trip_paper_queries(self, sql):
        parsed = parse_query(sql)
        assert parse_query(parsed.sql()) == parsed

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT a, -b * 2 AS x FROM t WHERE a IN ('p', 'q') OR NOT b = 2",
            "SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 1",
            "SELECT upper(a) FROM t WHERE a IS NOT NULL ORDER BY a DESC LIMIT 3",
        ],
    )
    def test_round_trip_misc(self, sql):
        parsed = parse_query(sql)
        assert parse_query(parsed.sql()) == parsed


class TestReferencedFields:
    def test_walks_everything(self):
        query = parse_query(
            "SELECT SUM(x), date(ts) FROM t WHERE y IN (1) GROUP BY date(ts)"
        )
        fields = set()
        for item in query.select:
            fields |= referenced_fields(item.expr)
        fields |= referenced_fields(query.where)
        assert fields == {"x", "ts", "y"}
