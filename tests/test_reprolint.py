"""Unit tests for the reprolint rules, suppressions and output formats."""

import json
import os
import textwrap

import pytest

from repro.analysis import Severity, all_rules, get_rule, run_lint
from repro.errors import AnalysisError


def lint_snippet(tmp_path, source, rel_path="mod.py", select=None, **kwargs):
    """Write ``source`` at ``rel_path`` under a tmp root and lint the root.

    ``rel_path`` controls the path-scoping rules see (top-level dir,
    exempt file names), so tests can place snippets 'inside' storage/,
    compress/ or cli.py.
    """
    target = tmp_path / rel_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], select=select, **kwargs)


class TestRaiseHierarchy:
    def test_foreign_exception_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                raise ValueError("nope")
            """,
            select=["REP001"],
        )
        assert report.codes() == {"REP001"}
        assert "ValueError" in report.findings[0].message

    def test_repro_errors_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.errors import StorageError

            def f():
                raise StorageError("corrupt")
            """,
            select=["REP001"],
        )
        assert report.ok

    def test_bare_reraise_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                try:
                    g()
                except KeyError:
                    raise
            """,
            select=["REP001"],
        )
        assert report.ok

    def test_not_implemented_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                raise NotImplementedError
            """,
            select=["REP001"],
        )
        assert report.ok

    def test_dynamic_raise_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(error):
                raise error
            """,
            select=["REP001"],
        )
        assert report.codes() == {"REP001"}


class TestBroadExcept:
    def test_except_exception_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            try:
                f()
            except Exception:
                pass
            """,
            select=["REP002"],
        )
        assert report.codes() == {"REP002"}

    def test_bare_except_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            try:
                f()
            except:
                pass
            """,
            select=["REP002"],
        )
        assert report.codes() == {"REP002"}

    def test_tuple_with_exception_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            try:
                f()
            except (ValueError, Exception):
                pass
            """,
            select=["REP002"],
        )
        assert report.codes() == {"REP002"}

    def test_narrow_except_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            try:
                f()
            except (ValueError, KeyError):
                pass
            """,
            select=["REP002"],
        )
        assert report.ok

    def test_cli_module_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            try:
                f()
            except Exception:
                pass
            """,
            rel_path="cli.py",
            select=["REP002"],
        )
        assert report.ok


class TestCodecImports:
    def test_direct_codec_import_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.compress.zippy import zippy_compress
            """,
            select=["REP003"],
        )
        assert report.codes() == {"REP003"}

    def test_registry_import_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.compress import compress, decompress
            """,
            select=["REP003"],
        )
        assert report.ok

    def test_compress_package_itself_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.compress.huffman import huffman_compress
            """,
            rel_path="compress/registry.py",
            select=["REP003"],
        )
        assert report.ok


class TestPrivateMutation:
    def test_foreign_private_write_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(store):
                store._cache = {}
            """,
            select=["REP004"],
        )
        assert report.codes() == {"REP004"}

    def test_self_write_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class C:
                def __init__(self):
                    self._cache = {}
            """,
            select=["REP004"],
        )
        assert report.ok

    def test_owned_attr_constructor_pattern_allowed(self, tmp_path):
        # A classmethod constructor poking an instance of its own class
        # (the bitset.py pattern) is fine: the module owns the attr.
        report = lint_snippet(
            tmp_path,
            """
            class BitSet:
                def __init__(self):
                    self._buf = bytearray()

                @classmethod
                def from_bits(cls, bits):
                    out = cls.__new__(cls)
                    out._buf = bytearray(bits)
                    return out
            """,
            select=["REP004"],
        )
        assert report.ok

    def test_dunder_not_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(obj):
                obj.__dict__ = {}
            """,
            select=["REP004"],
        )
        assert report.ok


class TestAnnotations:
    def test_unannotated_public_function_in_storage_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def encode(values):
                return bytes(values)
            """,
            rel_path="storage/codec.py",
            select=["REP005"],
        )
        assert report.codes() == {"REP005"}

    def test_fully_annotated_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def encode(values: list) -> bytes:
                return bytes(values)

            class Store:
                def get(self, key: str) -> int:
                    return 0
            """,
            rel_path="storage/codec.py",
            select=["REP005"],
        )
        assert report.ok

    def test_private_function_skipped(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def _helper(values):
                return values
            """,
            rel_path="core/util.py",
            select=["REP005"],
        )
        assert report.ok

    def test_other_directories_not_in_scope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def loose(values):
                return values
            """,
            rel_path="workload/gen.py",
            select=["REP005"],
        )
        assert report.ok


class TestNoPrint:
    def test_print_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                print("debugging")
            """,
            select=["REP006"],
        )
        assert report.codes() == {"REP006"}

    def test_cli_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            print("usage: ...")
            """,
            rel_path="cli.py",
            select=["REP006"],
        )
        assert report.ok


class TestChunkPartialMutation:
    def test_self_attribute_assignment_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    self.total = self.total + 1
                    return data
            """,
            select=["REP007"],
        )
        assert report.codes() == {"REP007"}

    def test_augmented_assignment_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    self.total += 1
                    return data
            """,
            select=["REP007"],
        )
        assert report.codes() == {"REP007"}

    def test_self_subscript_assignment_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    self.partials[data.chunk_index] = 1
                    return data
            """,
            select=["REP007"],
        )
        assert report.codes() == {"REP007"}

    def test_mutating_method_call_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    self.seen.append(data)
                    return data
            """,
            select=["REP007"],
        )
        assert report.codes() == {"REP007"}

    def test_nested_attribute_mutation_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    self.state.counts.update({1: 2})
                    return data
            """,
            select=["REP007"],
        )
        assert report.codes() == {"REP007"}

    def test_local_mutation_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    counts = []
                    counts.append(data)
                    total = self.offset + 1
                    return counts, total
            """,
            select=["REP007"],
        )
        assert report.ok

    def test_mutation_in_apply_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class Agg:
                def chunk_partial(self, data):
                    return data

                def apply(self, partials, chunk_index):
                    self.partials[chunk_index] = partials
                    self.total += 1
            """,
            select=["REP007"],
        )
        assert report.ok

    def test_chunk_partial_outside_class_ignored(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def chunk_partial(state, data):
                state.total += 1
                return data
            """,
            select=["REP007"],
        )
        assert report.ok


class TestSleepRetry:
    def test_time_sleep_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import time

            def f():
                time.sleep(0.5)
            """,
            select=["REP008"],
        )
        assert report.codes() == {"REP008"}
        assert "backoff_delay" in report.findings[0].message

    def test_bare_sleep_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from time import sleep

            def f():
                sleep(1)
            """,
            select=["REP008"],
        )
        assert report.codes() == {"REP008"}

    def test_while_retry_loop_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(op):
                while True:
                    try:
                        return op()
                    except OSError:
                        continue
            """,
            select=["REP008"],
        )
        assert report.codes() == {"REP008"}

    def test_range_retry_loop_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(op):
                for attempt in range(3):
                    try:
                        return op()
                    except OSError:
                        continue
            """,
            select=["REP008"],
        )
        assert report.codes() == {"REP008"}

    def test_data_fallback_loop_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def sniff(values):
                for kind in (int, float):
                    try:
                        return [kind(v) for v in values]
                    except ValueError:
                        continue
                return values
            """,
            select=["REP008"],
        )
        assert report.ok

    def test_faults_module_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def backoff(op):
                while True:
                    try:
                        return op()
                    except OSError:
                        continue
            """,
            rel_path="distributed/faults.py",
            select=["REP008"],
        )
        assert report.ok

    def test_plain_loop_without_retry_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(items):
                total = 0
                while items:
                    total += items.pop()
                return total
            """,
            select=["REP008"],
        )
        assert report.ok


class TestScalarImportLoop:
    def test_values_loop_flagged_in_hot_module(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(column):
                out = []
                for v in column.values:
                    out.append(v)
                return out
            """,
            rel_path="partition/codes.py",
            select=["REP009"],
        )
        assert report.codes() == {"REP009"}
        assert "per-row loop over .values" in report.findings[0].message

    def test_values_comprehension_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(column):
                return [v for v in column.values if v is not None]
            """,
            rel_path="storage/subdict.py",
            select=["REP009"],
        )
        assert report.codes() == {"REP009"}

    def test_value_call_in_loop_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(dictionary, gids):
                out = {}
                for gid in gids:
                    out[gid] = dictionary.value(gid)
                return out
            """,
            rel_path="storage/trie.py",
            select=["REP009"],
        )
        assert report.codes() == {"REP009"}
        assert "per-id .value() call" in report.findings[0].message

    def test_value_call_in_comprehension_flagged_once(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(dictionary, gids):
                return {g: dictionary.value(g) for g in gids}
            """,
            rel_path="storage/subdict.py",
            select=["REP009"],
        )
        assert len(report.findings) == 1

    def test_values_method_call_not_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(mapping, dictionary):
                for v in mapping.values():
                    pass
                return dictionary.values()
            """,
            rel_path="partition/codes.py",
            select=["REP009"],
        )
        assert report.ok

    def test_value_call_outside_loop_not_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(dictionary, gid):
                return dictionary.value(gid)
            """,
            rel_path="storage/trie.py",
            select=["REP009"],
        )
        assert report.ok

    def test_rule_scoped_to_hot_modules(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(column):
                return [v for v in column.values]
            """,
            rel_path="core/restriction.py",
            select=["REP009"],
        )
        assert report.ok

    def test_basename_match_for_direct_file_lint(self, tmp_path):
        target = tmp_path / "codes.py"
        target.write_text(
            "def f(column):\n    return [v for v in column.values]\n"
        )
        report = run_lint([str(target)], select=["REP009"])
        assert report.codes() == {"REP009"}

    def test_justified_suppression_silences(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(column):
                out = []
                for v in column.values:  # reprolint: disable=REP009 -- oracle
                    out.append(v)
                return out
            """,
            rel_path="partition/codes.py",
            select=["REP009"],
        )
        assert report.ok
        assert report.suppressed == 1

    def test_src_hot_modules_lint_clean(self):
        root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
            "repro",
        )
        report = run_lint([root], select=["REP009"])
        assert report.ok, [f.where for f in report.findings]


class TestPerByteCodecLoop:
    def test_cursor_while_loop_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def decode(data):
                out = []
                pos = 0
                while pos < len(data):
                    out.append(data[pos])
                    pos += 1
                return out
            """,
            rel_path="compress/varint.py",
            select=["REP010"],
        )
        assert report.codes() == {"REP010"}
        assert "while loop advances a cursor" in report.findings[0].message

    def test_for_range_subscript_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def encode(values, out):
                for i in range(len(values)):
                    out[i] = values[i] * 2
            """,
            rel_path="compress/rle.py",
            select=["REP010"],
        )
        assert report.codes() == {"REP010"}
        assert "for-range loop subscripts" in report.findings[0].message

    def test_one_finding_per_loop_header(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def decode(data):
                pos = 0
                while pos < len(data):
                    a = data[pos]
                    b = data[pos + 1]
                    pos += 2
            """,
            rel_path="compress/zippy.py",
            select=["REP010"],
        )
        assert len(report.findings) == 1

    def test_slice_only_loop_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def compress(data):
                out = []
                pos = 0
                while pos < len(data):
                    out.append(data[pos : pos + 8])
                    pos += 8
                return out
            """,
            rel_path="compress/zippy.py",
            select=["REP010"],
        )
        assert report.ok

    def test_while_without_cursor_allowed(self, tmp_path):
        # No AugAssign cursor: a heap-merge style loop is not a byte walk.
        report = lint_snippet(
            tmp_path,
            """
            def merge(heap, lengths):
                while len(heap) > 1:
                    item = heap.pop()
                    lengths.append(item)
            """,
            rel_path="compress/huffman.py",
            select=["REP010"],
        )
        assert report.ok

    def test_fancy_index_allowed(self, tmp_path):
        # Numpy-style gathers (call or attribute indexes) are the bulk
        # kernels' idiom, not a per-byte walk. (An index built from
        # bare name arithmetic like ``arr[starts + k]`` *is* flagged —
        # statically indistinguishable from a scalar walk — which is
        # why compress/bulk.py carries a justified suppression.)
        report = lint_snippet(
            tmp_path,
            """
            def kernel(arr, starts, mask, k):
                total = 0
                while total < 5:
                    total += int(arr[starts.clip(0)].sum())
                    lane = arr[mask.nonzero()]
                return total
            """,
            rel_path="compress/bulk.py",
            select=["REP010"],
        )
        assert report.ok

    def test_for_over_range_with_foreign_index_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def chunked(arr, chunk, mask):
                for lo in range(0, len(arr), chunk):
                    block = arr[lo : lo + chunk]
                    lane = block[mask.nonzero()]
            """,
            rel_path="compress/huffman.py",
            select=["REP010"],
        )
        assert report.ok

    def test_reference_module_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def decode(data):
                pos = 0
                while pos < len(data):
                    byte = data[pos]
                    pos += 1
            """,
            rel_path="compress/reference.py",
            select=["REP010"],
        )
        assert report.ok

    def test_outside_compress_not_in_scope(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def walk(data):
                pos = 0
                while pos < len(data):
                    byte = data[pos]
                    pos += 1
            """,
            rel_path="storage/serde.py",
            select=["REP010"],
        )
        assert report.ok

    def test_nested_loop_judged_at_its_own_header(self, tmp_path):
        # The outer while only does slice work; the inner while is the
        # byte walk and the finding lands on *its* header line.
        report = lint_snippet(
            tmp_path,
            """
            def compress(data):
                pos = 0
                while pos < len(data):
                    chunk = data[pos : pos + 16]
                    i = 0
                    while i < len(chunk):
                        byte = chunk[i]
                        i += 1
                    pos += 16
            """,
            rel_path="compress/lzo_like.py",
            select=["REP010"],
        )
        assert len(report.findings) == 1
        assert ":7:" in report.findings[0].where

    def test_repo_compress_modules_clean(self):
        root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "src",
            "repro",
        )
        report = run_lint([root], select=["REP010"])
        assert report.ok, [f.where for f in report.findings]
        # The deliberate scalar loops carry justified suppressions.
        assert report.suppressed >= 5


class TestSuppressions:
    def test_line_suppression_silences(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                raise ValueError("x")  # reprolint: disable=REP001 -- test
            """,
            select=["REP001"],
        )
        assert report.ok
        assert report.suppressed == 1

    def test_suppression_on_other_line_does_not_apply(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            # reprolint: disable=REP001 -- wrong line
            def f():
                raise ValueError("x")
            """,
            select=["REP001"],
        )
        assert report.codes() == {"REP001"}

    def test_file_suppression_silences_whole_module(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            # reprolint: disable-file=REP006 -- demo module
            print("one")
            print("two")
            """,
            select=["REP006"],
        )
        assert report.ok
        assert report.suppressed == 2

    def test_suppressing_one_code_leaves_others(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                print("x"); raise ValueError("y")  # reprolint: disable=REP006
            """,
            select=["REP001", "REP006"],
        )
        assert report.codes() == {"REP001"}
        assert report.suppressed == 1


class TestUnusedSuppressions:
    def test_stale_suppression_flagged_on_full_runs(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                x = 1  # reprolint: disable=REP006 -- never fires
                return x
            """,
        )
        assert report.codes() == {"REP016"}
        assert "matches no finding" in report.findings[0].message
        assert report.findings[0].severity is Severity.WARNING

    def test_used_suppression_not_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                print("x")  # reprolint: disable=REP006 -- demo output
            """,
        )
        assert "REP016" not in report.codes()
        assert report.suppressed == 1

    def test_selective_runs_never_fire_rep016(self, tmp_path):
        # With --select, most rules don't run, so an unmatched
        # suppression proves nothing about staleness.
        report = lint_snippet(
            tmp_path,
            """
            def f():
                x = 1  # reprolint: disable=REP001 -- justified elsewhere
                return x
            """,
            select=["REP006"],
        )
        assert report.ok

    def test_rep016_is_itself_suppressible(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                x = 1  # reprolint: disable=REP006,REP016 -- kept for doc parity
                return x
            """,
        )
        assert "REP016" not in report.codes()


class TestFingerprints:
    def test_fingerprint_survives_reindentation_and_line_shifts(self, tmp_path):
        first = lint_snippet(
            tmp_path,
            """
            def f():
                raise ValueError("x")
            """,
            select=["REP001"],
        ).findings[0]
        (tmp_path / "mod.py").unlink()
        second = lint_snippet(
            tmp_path,
            """
            # a new leading comment moves every line number
            UNRELATED = 1


            def f():
                raise ValueError("x")
            """,
            select=["REP001"],
        ).findings[0]
        assert first.fingerprint == second.fingerprint
        assert first.symbol == second.symbol == "f"
        assert first.where != second.where  # lines moved; identity didn't

    def test_same_symbol_occurrences_get_distinct_fingerprints(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f(flag):
                if flag:
                    raise ValueError("a")
                raise ValueError("b")
            """,
            select=["REP001"],
        )
        prints = [f.fingerprint for f in report.findings]
        assert len(prints) == 2
        assert len(set(prints)) == 2

    def test_fingerprint_and_symbol_in_json(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            class C:
                def f(self):
                    raise ValueError("x")
            """,
            select=["REP001"],
        )
        payload = json.loads(report.to_json())
        finding = payload["findings"][0]
        assert finding["symbol"] == "C.f"
        assert len(finding["fingerprint"]) == 12


class TestUnboundedFutureWait:
    # REP017 is scoped to core/executor.py — the snippets must carry
    # that basename for the only_files match to apply.

    def test_bare_result_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def collect(future):
                return future.result()
            """,
            rel_path="core/executor.py",
            select=["REP017"],
        )
        assert report.codes() == {"REP017"}
        assert ".result()" in report.findings[0].message

    def test_bare_join_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def drain(worker):
                worker.join()
            """,
            rel_path="core/executor.py",
            select=["REP017"],
        )
        assert report.codes() == {"REP017"}
        assert ".join()" in report.findings[0].message

    def test_bounded_waits_allowed(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def collect(future, worker, deadline):
                worker.join(timeout=deadline)
                worker.join(deadline)
                return future.result(timeout=deadline)
            """,
            rel_path="core/executor.py",
            select=["REP017"],
        )
        assert report.ok

    def test_str_join_never_matches(self, tmp_path):
        # str.join always takes its iterable argument, so the
        # zero-argument pattern cannot catch it.
        report = lint_snippet(
            tmp_path,
            """
            def describe(parts):
                return ", ".join(parts)
            """,
            rel_path="core/executor.py",
            select=["REP017"],
        )
        assert report.ok

    def test_other_modules_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def collect(future):
                return future.result()
            """,
            rel_path="distributed/cluster.py",
            select=["REP017"],
        )
        assert report.ok

    def test_suppression_with_reason_honoured(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def collect(future):
                return future.result()  # reprolint: disable=REP017 -- thread workers cannot be killed
            """,
            rel_path="core/executor.py",
            select=["REP017"],
        )
        assert report.ok


class TestHardcodedCodecName:
    def test_registry_call_literal_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from repro.compress.registry import get_codec

            def pick():
                return get_codec("zippy")
            """,
            rel_path="storage/cold.py",
            select=["REP018"],
        )
        assert report.codes() == {"REP018"}
        assert "'zippy'" in report.findings[0].message

    def test_codec_keyword_literal_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def build(make_store):
                return make_store(codec="lzo")
            """,
            rel_path="storage/cold.py",
            select=["REP018"],
        )
        assert report.codes() == {"REP018"}

    def test_codec_assignment_and_comparison_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def demote(self, field):
                self.codec_name = "rle"
                if field.codec == "huffman":
                    return True
            """,
            rel_path="storage/cold.py",
            select=["REP018"],
        )
        assert len(report.findings) == 2
        assert report.codes() == {"REP018"}

    def test_parameter_default_is_declared(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def write(path, codec="zippy"):
                return path, codec
            """,
            rel_path="formats/columnio.py",
            select=["REP018"],
        )
        assert report.ok

    def test_module_constant_is_declared(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            STATIC_CODEC = "zippy"

            def baseline():
                return STATIC_CODEC
            """,
            rel_path="workload/bench.py",
            select=["REP018"],
        )
        assert report.ok

    def test_lowercase_module_binding_still_flagged(self, tmp_path):
        # Only ALL_CAPS module constants are sanctioned declarations.
        report = lint_snippet(
            tmp_path,
            """
            default_codec = "zippy"
            """,
            rel_path="workload/bench.py",
            select=["REP018"],
        )
        assert report.codes() == {"REP018"}

    def test_unregistered_strings_ignored(self, tmp_path):
        # "auto" and unknown names are not registry codecs, and literals
        # outside codec-selecting positions are always fine.
        report = lint_snippet(
            tmp_path,
            """
            def route(store, mode):
                store.codec = "auto"
                label = "zippy"
                return mode == "zstd", label
            """,
            rel_path="storage/cold.py",
            select=["REP018"],
        )
        assert report.ok

    def test_registry_and_advisor_modules_exempt(self, tmp_path):
        snippet = """
            def register_defaults(register):
                register(codec="zippy")
        """
        for rel_path in ("compress/registry.py", "compress/advisor.py"):
            report = lint_snippet(
                tmp_path, snippet, rel_path=rel_path, select=["REP018"]
            )
            assert report.ok, rel_path

    def test_suppression_with_reason_honoured(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def pin(store):
                store.codec = "zippy"  # reprolint: disable=REP018 -- golden-file fixture pins the layout
            """,
            rel_path="storage/cold.py",
            select=["REP018"],
        )
        assert report.ok


class TestCatalogConsistency:
    def test_every_rule_has_a_catalog_entry(self):
        from repro.analysis.catalog import LINT_CATALOG

        catalog_codes = {entry.code for entry in LINT_CATALOG}
        for rule in all_rules():
            assert rule.code in catalog_codes, rule.code

    def test_every_rule_has_a_design_md_section(self):
        design = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "DESIGN.md",
        )
        with open(design, encoding="utf-8") as handle:
            text = handle.read()
        for rule in all_rules():
            assert f"| {rule.code} |" in text, (
                f"{rule.code} missing from the DESIGN.md rule table"
            )

    def test_rules_docstring_mentions_current_range(self):
        import repro.analysis.rules as rules_module

        last = max(rule.code for rule in all_rules())
        assert last in rules_module.__doc__


class TestEngine:
    def test_registry_is_complete_and_ordered(self):
        codes = [rule.code for rule in all_rules()]
        assert codes == sorted(codes)
        assert {
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
            "REP009",
        } <= set(codes)

    def test_get_rule_unknown_raises(self):
        with pytest.raises(AnalysisError):
            get_rule("REP999")

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            run_lint(["/nonexistent/lint/root"])

    def test_severity_override(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                print("x")
            """,
            select=["REP006"],
            severity_overrides={"REP006": Severity.WARNING},
        )
        assert len(report.findings) == 1
        assert report.findings[0].severity is Severity.WARNING
        assert not report.has_errors

    def test_severity_override_unknown_code_raises(self, tmp_path):
        with pytest.raises(AnalysisError):
            lint_snippet(
                tmp_path,
                "x = 1\n",
                severity_overrides={"NOPE01": Severity.ERROR},
            )

    def test_json_output_shape(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                raise ValueError("x")
            """,
            select=["REP001"],
        )
        payload = json.loads(report.to_json())
        assert payload["tool"] == "reprolint"
        assert payload["ok"] is False
        assert payload["findings"][0]["code"] == "REP001"
        assert payload["findings"][0]["severity"] == "error"
        assert "mod.py" in payload["findings"][0]["where"]

    def test_findings_carry_location(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            def f():
                raise ValueError("x")
            """,
            select=["REP001"],
        )
        where = report.findings[0].where
        assert where.startswith("mod.py:")
        line = int(where.split(":")[1])
        assert line == 3  # dedented snippet keeps the leading newline

    def test_syntax_error_raises_analysis_error(self, tmp_path):
        with pytest.raises(AnalysisError):
            lint_snippet(tmp_path, "def broken(:\n")


class TestUnboundedServiceQueue:
    # REP019 is scoped to repro/service/* — the snippets must carry a
    # service/ path for the only_dirs match to apply.

    def test_unbounded_queue_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import queue

            def build():
                return queue.Queue()
            """,
            rel_path="service/scheduler.py",
            select=["REP019"],
        )
        assert report.codes() == {"REP019"}
        assert "maxsize" in report.findings[0].message

    def test_zero_maxsize_is_unbounded(self, tmp_path):
        # The stdlib spells "infinite" as maxsize<=0; that spelling is
        # exactly what the rule exists to reject.
        report = lint_snippet(
            tmp_path,
            """
            import queue

            def build():
                return queue.Queue(maxsize=0)
            """,
            rel_path="service/scheduler.py",
            select=["REP019"],
        )
        assert report.codes() == {"REP019"}

    def test_unbounded_deque_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from collections import deque

            def build():
                return deque()
            """,
            rel_path="service/cache.py",
            select=["REP019"],
        )
        assert report.codes() == {"REP019"}
        assert "maxlen" in report.findings[0].message

    def test_simple_queue_always_flagged(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            import queue

            def build():
                return queue.SimpleQueue()
            """,
            rel_path="service/service.py",
            select=["REP019"],
        )
        assert report.codes() == {"REP019"}
        assert "SimpleQueue" in report.findings[0].message

    def test_bounded_constructions_allowed(self, tmp_path):
        # Literal bounds, plumbed (non-literal) bounds, and the
        # positional deque(iterable, maxlen) spelling all pass.
        report = lint_snippet(
            tmp_path,
            """
            import queue
            from collections import deque

            def build(depth):
                a = queue.Queue(maxsize=depth)
                b = queue.Queue(8)
                c = deque(maxlen=depth)
                d = deque([], 16)
                return a, b, c, d
            """,
            rel_path="service/scheduler.py",
            select=["REP019"],
        )
        assert report.ok

    def test_other_modules_exempt(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from collections import deque

            def build():
                return deque()
            """,
            rel_path="core/executor.py",
            select=["REP019"],
        )
        assert report.ok

    def test_suppression_with_reason_honoured(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            """
            from collections import deque

            def build():
                return deque()  # reprolint: disable=REP019 -- drained synchronously before return
            """,
            rel_path="service/scheduler.py",
            select=["REP019"],
        )
        assert report.ok
