"""BitSet tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.storage.bitset import BitSet


class TestBitSet:
    def test_starts_clear(self):
        bits = BitSet(20)
        assert list(bits) == [0] * 20

    def test_set_get_clear(self):
        bits = BitSet(10)
        bits.set(3)
        assert bits.get(3) == 1
        assert bits.get(2) == 0
        bits.clear(3)
        assert bits.get(3) == 0

    def test_out_of_range(self):
        bits = BitSet(8)
        with pytest.raises(StorageError):
            bits.get(8)
        with pytest.raises(StorageError):
            bits.set(-1)

    def test_negative_size_rejected(self):
        with pytest.raises(StorageError):
            BitSet(-1)

    def test_size_bytes_is_ceil(self):
        assert BitSet(0).size_bytes() == 0
        assert BitSet(1).size_bytes() == 1
        assert BitSet(8).size_bytes() == 1
        assert BitSet(9).size_bytes() == 2

    def test_from_bits_round_trip(self):
        pattern = [1, 0, 0, 1, 1, 0, 1, 0, 1]
        assert list(BitSet.from_bits(pattern)) == pattern

    def test_from_numpy_matches_from_bits(self):
        pattern = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1, 1], dtype=np.uint8)
        a = BitSet.from_numpy(pattern)
        b = BitSet.from_bits(pattern.tolist())
        assert a.to_bytes() == b.to_bytes()

    def test_to_numpy_round_trip(self):
        pattern = [0, 1, 1, 0, 1]
        bits = BitSet.from_bits(pattern)
        assert bits.to_numpy().tolist() == pattern

    def test_count(self):
        assert BitSet.from_bits([1, 0, 1, 1, 0]).count() == 3
        assert BitSet(0).count() == 0

    def test_bytes_round_trip(self):
        bits = BitSet.from_bits([1, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1])
        rebuilt = BitSet.from_bytes(bits.to_bytes(), len(bits))
        assert list(rebuilt) == list(bits)

    def test_from_bytes_size_mismatch(self):
        with pytest.raises(StorageError):
            BitSet.from_bytes(b"\x00", 20)

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_round_trip_property(self, pattern):
        bits = BitSet.from_bits(pattern)
        assert list(bits) == pattern
        assert bits.to_numpy().tolist() == pattern
