"""Fault injection and fault handling — the PR 3 invariants.

The load-bearing property (hypothesis-tested): under *any* seeded fault
plan, a query the cluster reports as **complete** returns rows
bit-identical to the fault-free cluster; a degraded query reports a
``row_coverage`` that equals the surviving-row fraction *exactly*. And
the whole fault schedule — events, counters, simulated latency — is a
pure function of ``(query sequence, fault seed)``, identical across
runs and across serial/parallel executors.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.datastore import DataStoreOptions
from repro.distributed import (
    ClusterConfig,
    FaultConfig,
    FaultEvent,
    FaultPlan,
    SimulatedCluster,
    backoff_delay,
    dispatch_sub_query,
)
from repro.distributed.faults import NO_FAULTS, flip_bit
from repro.errors import (
    DistributedError,
    ResponseCorruptionError,
    ShardUnavailableError,
)
from repro.monitoring import counters
from repro.workload.generator import LogsConfig, generate_query_logs

_TABLE = generate_query_logs(
    LogsConfig(n_rows=800, n_days=12, n_teams=5, seed=31)
)
_OPTIONS = DataStoreOptions(
    partition_fields=("country", "table_name"),
    max_chunk_rows=120,
    reorder_rows=True,
)
_QUERY = (
    "SELECT country, COUNT(*) AS c, SUM(latency) AS s FROM data "
    "GROUP BY country ORDER BY c DESC LIMIT 10"
)
_PROJECTION = (
    "SELECT country, latency FROM data WHERE latency > 3000 "
    "ORDER BY latency DESC LIMIT 5"
)
_N_SHARDS = 4
_N_MACHINES = 6


def _cluster(faults=None, **config_overrides) -> SimulatedCluster:
    config = ClusterConfig(
        n_machines=_N_MACHINES, seed=5, faults=faults, **config_overrides
    )
    return SimulatedCluster.build(
        _TABLE, n_shards=_N_SHARDS, store_options=_OPTIONS, config=config
    )


#: The fault-free answers, computed once.
_BASELINE = {
    sql: _cluster().execute(sql)[0].sorted_rows()
    for sql in (_QUERY, _PROJECTION)
}


class TestFaultConfigValidation:
    def test_rates_must_be_probabilities(self):
        for name in ("crash_rate", "timeout_rate", "slow_rate", "corruption_rate"):
            with pytest.raises(DistributedError):
                FaultConfig(**{name: 1.5})
            with pytest.raises(DistributedError):
                FaultConfig(**{name: -0.1})

    def test_downtime_and_slow_factor_bounds(self):
        with pytest.raises(DistributedError):
            FaultConfig(mean_downtime_queries=0.5)
        with pytest.raises(DistributedError):
            FaultConfig(slow_factor=0.9)

    def test_deadline_bounds(self):
        with pytest.raises(DistributedError):
            FaultConfig(deadline_seconds=0.0)
        with pytest.raises(DistributedError):
            # Timeout faults are detected by the deadline firing.
            FaultConfig(timeout_rate=0.1, deadline_seconds=None)

    def test_retry_knob_bounds(self):
        with pytest.raises(DistributedError):
            FaultConfig(max_retries=-1)
        with pytest.raises(DistributedError):
            FaultConfig(backoff_base_seconds=-0.01)
        with pytest.raises(DistributedError):
            FaultConfig(backoff_multiplier=0.5)

    def test_no_faults_plan_is_inert(self):
        plan = FaultPlan(NO_FAULTS, 4)
        assert not plan.active
        assert not plan.is_down(0, 0)
        assert plan.down_machines(5) == []


class TestBackoffDelay:
    def test_exponential_schedule(self):
        assert backoff_delay(0, 0.01, 2.0) == pytest.approx(0.01)
        assert backoff_delay(1, 0.01, 2.0) == pytest.approx(0.02)
        assert backoff_delay(3, 0.01, 2.0) == pytest.approx(0.08)

    def test_negative_retry_rejected(self):
        with pytest.raises(DistributedError):
            backoff_delay(-1, 0.01, 2.0)


class TestFaultPlanDeterminism:
    def test_crash_schedule_reproducible(self):
        config = FaultConfig(seed=21, crash_rate=0.3)
        a = FaultPlan(config, 8)
        b = FaultPlan(config, 8)
        schedule_a = [a.down_machines(q) for q in range(30)]
        schedule_b = [b.down_machines(q) for q in range(30)]
        assert schedule_a == schedule_b
        assert any(schedule_a)  # 30 queries x 8 machines at 30%: crashes

    def test_crash_schedule_order_independent(self):
        """Probing queries out of order yields the same schedule."""
        config = FaultConfig(seed=3, crash_rate=0.4)
        forward = FaultPlan(config, 4)
        backward = FaultPlan(config, 4)
        ahead = [backward.is_down(m, 19) for m in range(4)]
        assert [forward.is_down(m, 19) for m in range(4)] == ahead

    def test_attempt_faults_stateless(self):
        config = FaultConfig(seed=9, timeout_rate=0.3, slow_rate=0.3,
                             corruption_rate=0.3)
        plan = FaultPlan(config, 4)
        first = plan.attempt_faults(2, 1, 3, 0)
        again = plan.attempt_faults(2, 1, 3, 0)
        assert first == again
        # Distinct keys draw independently; over many keys all three
        # fault kinds occur.
        draws = [
            plan.attempt_faults(q, s, m, 0)
            for q in range(6) for s in range(4) for m in range(4)
        ]
        assert any(d.timeout for d in draws)
        assert any(d.slow for d in draws)
        assert any(d.corrupt for d in draws)


class TestCorruptionDetection:
    def test_flip_bit_round_trip(self):
        payload = b"powerdrill"
        flipped = flip_bit(payload, 13)
        assert flipped != payload
        assert flip_bit(flipped, 13) == payload
        with pytest.raises(DistributedError):
            flip_bit(b"", 0)

    def test_corrupt_response_raises(self):
        plan = FaultPlan(FaultConfig(seed=1, corruption_rate=1.0), 2)
        with pytest.raises(ResponseCorruptionError):
            plan.verify_response(0, 0, 0, 0, {"k": 1}, corrupt=True)

    def test_clean_response_passes(self):
        plan = FaultPlan(FaultConfig(seed=1, corruption_rate=0.5), 2)
        plan.verify_response(0, 0, 0, 0, {"k": 1}, corrupt=False)


class TestDispatch:
    def test_all_replicas_down_is_unserved(self):
        plan = FaultPlan(FaultConfig(seed=2, crash_rate=1.0), 3)
        outcome = dispatch_sub_query(plan, 0, 7, [0, 1], lambda m: (0.01, 0))
        assert not outcome.served
        assert outcome.crashes == 2
        kinds = [event.kind for event in outcome.events]
        assert kinds.count("crash") == 2
        assert "shard-unavailable" in kinds

    def test_fastest_valid_response_wins(self):
        plan = FaultPlan(NO_FAULTS, 3)
        outcome = dispatch_sub_query(
            plan, 0, 0, [0, 1, 2], lambda m: (0.3 - 0.1 * m, 0)
        )
        assert outcome.served
        assert outcome.winner == 2
        assert outcome.replica_win
        assert outcome.seconds == pytest.approx(0.1)

    def test_deadline_kills_slow_attempts(self):
        plan = FaultPlan(FaultConfig(seed=0, deadline_seconds=0.2), 2)
        # Primary overruns the deadline; the replica answers in time.
        outcome = dispatch_sub_query(
            plan, 0, 0, [0, 1], lambda m: (0.5 if m == 0 else 0.05, 0)
        )
        assert outcome.served
        assert outcome.winner == 1
        assert outcome.failover
        assert outcome.timeouts == 1

    def test_retries_exhausted_accumulates_backoff(self):
        config = FaultConfig(
            seed=0, deadline_seconds=0.1, max_retries=2,
            backoff_base_seconds=0.01, backoff_multiplier=2.0,
        )
        plan = FaultPlan(config, 2)
        outcome = dispatch_sub_query(plan, 0, 0, [0, 1], lambda m: (1.0, 0))
        assert not outcome.served
        assert outcome.retries == 2
        assert outcome.backoff_seconds == pytest.approx(0.01 + 0.02)
        # 3 waves x 2 machines, every attempt deadline-killed.
        assert outcome.timeouts == 6
        # Unserved time: each wave ends at its deadline plus backoffs.
        assert outcome.seconds == pytest.approx(3 * 0.1 + 0.03)


class TestClusterUnderFaults:
    def test_no_fault_config_means_legacy_metrics(self):
        cluster = _cluster()
        __, metrics = cluster.execute(_QUERY)
        assert metrics.complete
        assert metrics.row_coverage == 1.0
        assert metrics.retries == 0
        assert metrics.fault_events == []

    def test_complete_under_crashes_is_bit_identical(self):
        faults = FaultConfig(seed=8, crash_rate=0.3)
        cluster = _cluster(faults=faults)
        saw_complete = saw_degraded = False
        for __ in range(12):
            result, metrics = cluster.execute(_QUERY)
            if metrics.complete:
                saw_complete = True
                assert result.sorted_rows() == _BASELINE[_QUERY]
                assert result.row_coverage == 1.0
            else:
                saw_degraded = True
                assert result.row_coverage < 1.0
        assert saw_complete and saw_degraded

    def test_degraded_coverage_is_exact(self):
        faults = FaultConfig(seed=8, crash_rate=0.3)
        cluster = _cluster(faults=faults)
        total = cluster.total_rows()
        for __ in range(12):
            result, metrics = cluster.execute(_QUERY)
            lost = sum(
                cluster.shards[s].n_rows for s in metrics.unavailable_shards
            )
            assert metrics.row_coverage == (total - lost) / total
            assert result.complete is metrics.complete

    def test_projection_queries_degrade_too(self):
        faults = FaultConfig(seed=8, crash_rate=0.3)
        cluster = _cluster(faults=faults)
        for __ in range(12):
            result, metrics = cluster.execute(_PROJECTION)
            if metrics.complete:
                assert result.sorted_rows() == _BASELINE[_PROJECTION]

    def test_degrade_false_raises(self):
        faults = FaultConfig(seed=8, crash_rate=0.9, mean_downtime_queries=5.0)
        cluster = _cluster(faults=faults, degrade=False)
        with pytest.raises(ShardUnavailableError):
            for __ in range(12):
                cluster.execute(_QUERY)

    def test_fault_counters_published(self):
        counters.reset()
        faults = FaultConfig(seed=8, crash_rate=0.5)
        cluster = _cluster(faults=faults)
        for __ in range(10):
            cluster.execute(_QUERY)
        snapshot = counters.snapshot()
        assert snapshot.get("distributed.faults.crashes", 0) > 0
        assert snapshot.get("distributed.faults.degraded_queries", 0) > 0
        counters.reset()

    def test_corruption_quarantine_still_serves(self):
        faults = FaultConfig(seed=4, corruption_rate=0.2)
        cluster = _cluster(faults=faults)
        quarantines = 0
        for __ in range(8):
            result, metrics = cluster.execute(_QUERY)
            quarantines += metrics.quarantines
            if metrics.complete:
                assert result.sorted_rows() == _BASELINE[_QUERY]
        assert quarantines > 0

    def test_same_seed_reproduces_everything(self):
        """(query sequence, fault seed) fully determines the run."""
        faults = FaultConfig(
            seed=6, crash_rate=0.25, timeout_rate=0.05,
            slow_rate=0.1, corruption_rate=0.05,
        )
        runs = []
        for __ in range(2):
            cluster = _cluster(faults=faults)
            trace = []
            for __ in range(8):
                __, metrics = cluster.execute(_QUERY)
                trace.append(
                    (
                        metrics.latency_seconds,
                        metrics.retries,
                        metrics.failovers,
                        metrics.timeouts,
                        metrics.quarantines,
                        metrics.crashes,
                        metrics.row_coverage,
                        tuple(metrics.fault_events),
                    )
                )
            runs.append(trace)
        assert runs[0] == runs[1]

    def test_serial_and_parallel_identical_under_faults(self):
        faults = FaultConfig(
            seed=6, crash_rate=0.25, timeout_rate=0.05,
            slow_rate=0.1, corruption_rate=0.05,
        )
        serial = _cluster(faults=faults)
        parallel = _cluster(faults=faults, executor="parallel", workers=4)
        for __ in range(8):
            s_result, s_metrics = serial.execute(_QUERY)
            p_result, p_metrics = parallel.execute(_QUERY)
            assert s_result.sorted_rows() == p_result.sorted_rows()
            assert s_metrics.latency_seconds == p_metrics.latency_seconds
            assert s_metrics.fault_events == p_metrics.fault_events
            assert s_metrics.row_coverage == p_metrics.row_coverage

    def test_fault_events_attributed(self):
        faults = FaultConfig(seed=8, crash_rate=0.5)
        cluster = _cluster(faults=faults)
        events: list[FaultEvent] = []
        for __ in range(6):
            __, metrics = cluster.execute(_QUERY)
            events.extend(metrics.fault_events)
        assert events
        for event in events:
            assert event.kind in (
                "crash", "slow", "timeout", "corrupt", "retry",
                "shard-unavailable",
            )
            assert 0 <= event.shard_id < _N_SHARDS
            assert "q" in event.describe()


class TestFaultProperties:
    @given(seed=st.integers(0, 200), crash_rate=st.floats(0.0, 0.6))
    @settings(max_examples=40, deadline=None)
    def test_complete_implies_identical_else_exact_coverage(
        self, seed, crash_rate
    ):
        """THE invariant: any crash-only plan either leaves the answer
        bit-identical (complete) or reports exact coverage (degraded)."""
        faults = FaultConfig(seed=seed, crash_rate=crash_rate)
        cluster = _cluster(faults=faults)
        total = cluster.total_rows()
        for __ in range(3):
            result, metrics = cluster.execute(_QUERY)
            if metrics.complete:
                assert result.sorted_rows() == _BASELINE[_QUERY]
                assert metrics.row_coverage == 1.0
                assert metrics.unavailable_shards == ()
            else:
                lost = sum(
                    cluster.shards[s].n_rows
                    for s in metrics.unavailable_shards
                )
                assert 0 < lost <= total
                assert metrics.row_coverage == (total - lost) / total

    @given(seed=st.integers(0, 200))
    @settings(max_examples=25, deadline=None)
    def test_surviving_replica_everywhere_implies_complete(self, seed):
        """When every shard keeps >= 1 live replica, crash-only plans
        cannot degrade the answer."""
        faults = FaultConfig(seed=seed, crash_rate=0.3)
        cluster = _cluster(faults=faults)
        plan = cluster._fault_plan
        for query_index in range(3):
            every_shard_reachable = all(
                any(
                    not plan.is_down(m, query_index)
                    for m in cluster.placement_of(shard_id)
                )
                for shard_id in range(cluster.n_shards)
            )
            result, metrics = cluster.execute(_QUERY)
            if every_shard_reachable:
                assert metrics.complete
                assert result.sorted_rows() == _BASELINE[_QUERY]
