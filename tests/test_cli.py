"""CLI tests: import / query / info / demo paths."""

import pytest

from repro.cli import main
from repro.formats import write_csv
from repro.storage.serde import load_store


@pytest.fixture()
def csv_path(log_table, tmp_path):
    path = str(tmp_path / "logs.csv")
    write_csv(log_table, path)
    return path


class TestImport:
    def test_import_creates_loadable_store(self, csv_path, tmp_path, capsys):
        out = str(tmp_path / "s.pds")
        code = main(
            [
                "import", csv_path, out,
                "--partition", "country,table_name",
                "--chunk-rows", "200",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "imported" in text
        assert "import phases:" in text
        assert "factorize" in text
        assert "rows/s" in text
        store = load_store(out)
        assert store.n_chunks > 1
        assert store.options.reorder_rows

    def test_import_without_partition(self, csv_path, tmp_path):
        out = str(tmp_path / "s.pds")
        assert main(["import", csv_path, out]) == 0
        assert load_store(out).n_chunks == 1

    def test_unsupported_format(self, tmp_path, capsys):
        bad = str(tmp_path / "data.xyz")
        open(bad, "w").write("")
        code = main(["import", bad, str(tmp_path / "s.pds")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_csv_type_sniffing(self, tmp_path):
        path = str(tmp_path / "typed.csv")
        open(path, "w").write("a,b,c\n1,1.5,x\n2,\\N,y\n")
        out = str(tmp_path / "typed.pds")
        assert main(["import", path, out]) == 0
        store = load_store(out)
        assert store.field("a").dictionary.values() == [1, 2]
        assert store.field("b").dictionary.values() == [None, 1.5]
        assert store.field("c").dictionary.values() == ["x", "y"]


class TestQuery:
    @pytest.fixture()
    def store_path(self, csv_path, tmp_path):
        out = str(tmp_path / "s.pds")
        main(["import", csv_path, out, "--partition", "country,table_name",
              "--chunk-rows", "200"])
        return out

    def test_query_prints_rows_and_stats(self, store_path, capsys):
        code = main(
            [
                "query", store_path,
                "SELECT country, COUNT(*) c FROM data "
                "GROUP BY country ORDER BY c DESC LIMIT 3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "country" in out
        assert "skipped" in out

    def test_quiet_suppresses_stats(self, store_path, capsys):
        main(["query", store_path, "SELECT COUNT(*) FROM data", "--quiet"])
        out = capsys.readouterr().out
        assert "skipped" not in out

    def test_bad_sql_is_an_error(self, store_path, capsys):
        code = main(["query", store_path, "SELEKT nope"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestInfoAndDemo:
    def test_info(self, csv_path, tmp_path, capsys):
        out = str(tmp_path / "s.pds")
        main(["import", csv_path, out, "--partition", "country"])
        assert main(["info", out]) == 0
        text = capsys.readouterr().out
        assert "table_name" in text
        assert "total encoded" in text

    def test_demo_runs_paper_queries(self, capsys):
        assert main(["demo", "--rows", "2000"]) == 0
        text = capsys.readouterr().out
        assert text.count("--") >= 3  # three query banners


class TestBenchImport:
    def test_bench_import_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "import.json")
        code = main(
            [
                "bench", "import",
                "--rows", "2000",
                "--repeats", "1",
                "--output", out,
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "import bench" in text
        assert "serialization identical to reference: yes" in text

        import json

        report = json.loads(open(out, encoding="utf-8").read())
        assert report["rows"] == 2000
        assert report["serialization_identical"] is True
        assert report["fsck_ok"] is True
        assert set(report["import_stats"]["phase_seconds"]) == {
            "factorize", "reorder", "partition", "dictionary", "encode",
            "advisor",
        }


class TestBenchCompress:
    def test_bench_compress_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "compress.json")
        code = main(
            [
                "bench", "compress",
                "--rows", "4000",
                "--repeats", "1",
                "--store-rows", "2000",
                "--huffman-bytes", "8192",
                "--output", out,
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "compress bench" in text
        assert "varint-stream" in text
        assert "BUG" not in text  # byte-identity / round-trip columns

        import json

        report = json.loads(open(out, encoding="utf-8").read())
        assert report["rows"] == 4000
        for name in ("varint-stream", "rle", "zippy", "lzo", "huffman"):
            entry = report["codecs"][name]
            assert entry["byte_identical"] is True
            assert entry["round_trip"] is True
        assert report["codec_stats"]["zippy"]["encode_calls"] >= 1


class TestChaos:
    def test_chaos_sweep_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "chaos.json")
        code = main(
            [
                "chaos",
                "--rows", "3000",
                "--queries", "3",
                "--crash-rate", "0,0.4",
                "--fault-seed", "7",
                "--output", out,
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "fault-tolerance bench" in text
        assert "avail" in text

        import json

        report = json.loads(open(out, encoding="utf-8").read())
        assert report["fault_seed"] == 7
        assert [p["crash_rate"] for p in report["sweep"]] == [0.0, 0.4]
        assert report["sweep"][0]["availability"] == 1.0
        assert all(
            p["complete_results_match_reference"] for p in report["sweep"]
        )

    def test_chaos_rejects_bad_rate(self, capsys):
        code = main(["chaos", "--rows", "2000", "--crash-rate", "1.5"])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestLintJson:
    def test_lint_json_smoke(self, tmp_path, capsys):
        import json

        bad = tmp_path / "mod.py"
        bad.write_text('def f():\n    raise ValueError("x")\n')
        code = main(["lint", str(bad), "--json", "--select", "REP001"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["tool"] == "reprolint"
        finding = payload["findings"][0]
        assert finding["code"] == "REP001"
        assert finding["symbol"] == "f"
        assert len(finding["fingerprint"]) == 12

    def test_lint_json_fingerprints_are_stable_across_line_shifts(
        self, tmp_path, capsys
    ):
        import json

        bad = tmp_path / "mod.py"
        bad.write_text('def f():\n    raise ValueError("x")\n')
        main(["lint", str(bad), "--json", "--select", "REP001"])
        first = json.loads(capsys.readouterr().out)["findings"][0]
        bad.write_text('# moved\n\ndef f():\n    raise ValueError("x")\n')
        main(["lint", str(bad), "--json", "--select", "REP001"])
        second = json.loads(capsys.readouterr().out)["findings"][0]
        assert first["fingerprint"] == second["fingerprint"]
        assert first["where"] != second["where"]

    def test_lint_clean_path_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "mod.py"
        good.write_text("def f() -> int:\n    return 1\n")
        assert main(["lint", str(good), "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestServe:
    def test_serve_demo_replays_and_reports(self, capsys):
        code = main(
            [
                "serve",
                "--rows", "2000",
                "--sessions", "2",
                "--clicks", "2",
                "--queries-per-click", "2",
                "--tenants", "2",
                "--concurrency", "2",
                "--passes", "2",
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "cold" in text
        assert "pass 2" in text
        assert "semantic cache" in text
        assert "0 failed" in text

    def test_bench_serve_writes_report(self, tmp_path, capsys):
        out = str(tmp_path / "serve.json")
        code = main(
            [
                "bench", "serve",
                "--rows", "2000",
                "--concurrencies", "1",
                "--sessions", "2",
                "--clicks", "2",
                "--queries-per-click", "2",
                "--output", out,
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "serving bench" in text
        assert "open loop" in text
        import json

        report = json.loads((tmp_path / "serve.json").read_text())
        assert report["bench"] == "serving"
        assert report["correctness"]["mismatches"] == 0
