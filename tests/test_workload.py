"""Workload generator tests: dataset shape and drill-down sessions."""

import pytest

from repro.errors import ReproError
from repro.sql.parser import parse_query
from repro.workload.generator import (
    LogsConfig,
    _date_string,
    generate_query_logs,
)
from repro.workload.queries import (
    DrillDownConfig,
    generate_drilldown_sessions,
    paper_queries,
)


class TestGenerator:
    def test_deterministic(self):
        config = LogsConfig(n_rows=500, seed=5)
        assert generate_query_logs(config) == generate_query_logs(config)

    def test_different_seeds_differ(self):
        a = generate_query_logs(LogsConfig(n_rows=500, seed=1))
        b = generate_query_logs(LogsConfig(n_rows=500, seed=2))
        assert a != b

    def test_schema(self, log_table):
        assert log_table.field_names == [
            "timestamp",
            "table_name",
            "latency",
            "country",
            "user_name",
        ]

    def test_country_cardinality(self, log_table):
        countries = set(log_table.column("country").values)
        assert 2 <= len(countries) <= 25

    def test_table_name_is_many_distinct(self, log_table):
        names = set(log_table.column("table_name").values)
        # "a field with many distinct values" — scaling with rows.
        assert len(names) > log_table.n_rows / 50

    def test_table_names_include_dates(self, log_table):
        name = log_table.column("table_name").values[0]
        assert name.split("/")[-1].count("-") == 2

    def test_timestamps_in_window(self, log_table):
        values = log_table.column("timestamp").values
        start = 1317427200
        assert all(start <= ts < start + 92 * 86400 for ts in values)

    def test_latency_positive(self, log_table):
        assert all(v > 0 for v in log_table.column("latency").values)

    def test_null_fraction(self):
        table = generate_query_logs(
            LogsConfig(n_rows=2000, seed=3, null_latency_fraction=0.1)
        )
        nulls = sum(1 for v in table.column("latency").values if v is None)
        assert 0.05 < nulls / 2000 < 0.2

    def test_country_skew_is_zipfian(self, log_table):
        from collections import Counter

        counts = Counter(log_table.column("country").values).most_common()
        assert counts[0][1] > 3 * counts[-1][1]

    def test_country_team_correlation(self):
        """Teams concentrate in home countries (enables skip wins)."""
        from collections import Counter

        table = generate_query_logs(LogsConfig(n_rows=20_000, seed=8))
        by_team: dict[str, Counter] = {}
        for name, country in zip(
            table.column("table_name").values, table.column("country").values
        ):
            team = name.split("/")[4]
            by_team.setdefault(team, Counter())[country] += 1
        concentrated = 0
        for counter in by_team.values():
            total = sum(counter.values())
            if total >= 50 and counter.most_common(1)[0][1] / total > 0.4:
                concentrated += 1
        assert concentrated >= len([c for c in by_team.values() if sum(c.values()) >= 50]) / 2

    def test_invalid_config(self):
        with pytest.raises(ReproError):
            LogsConfig(n_rows=0)
        with pytest.raises(ReproError):
            LogsConfig(null_latency_fraction=1.5)

    def test_date_string_civil_conversion(self):
        assert _date_string(0) == "2011-10-01"
        assert _date_string(31) == "2011-11-01"
        assert _date_string(91) == "2011-12-31"


class TestPaperQueries:
    def test_three_queries_parse(self):
        queries = paper_queries()
        assert len(queries) == 3
        for sql in queries:
            parse_query(sql)


class TestDrillDownSessions:
    def test_all_queries_parse_and_run(self, log_table, log_store):
        clicks = generate_drilldown_sessions(
            log_table,
            DrillDownConfig(n_sessions=2, clicks_per_session=2, queries_per_click=3),
        )
        assert len(clicks) == 4
        for batch in clicks:
            assert len(batch) == 3
            for sql in batch:
                log_store.execute(sql)  # must not raise

    def test_restrictions_deepen_within_session(self, log_table):
        clicks = generate_drilldown_sessions(
            log_table,
            DrillDownConfig(n_sessions=1, clicks_per_session=3, queries_per_click=1),
        )
        depths = [batch[0].count(" IN (") for batch in clicks]
        assert depths == sorted(depths)

    def test_deterministic(self, log_table):
        config = DrillDownConfig(n_sessions=2, seed=9)
        assert generate_drilldown_sessions(
            log_table, config
        ) == generate_drilldown_sessions(log_table, config)

    def test_invalid_config(self, log_table):
        with pytest.raises(ReproError):
            generate_drilldown_sessions(
                log_table, DrillDownConfig(queries_per_click=0)
            )

    def test_drilldowns_skip_most_rows(self, log_table, log_store):
        """The Section 6 effect at test scale: most rows are skipped."""
        clicks = generate_drilldown_sessions(
            log_table,
            DrillDownConfig(n_sessions=4, clicks_per_session=3, queries_per_click=2),
        )
        skipped = total = 0
        for batch in clicks:
            for sql in batch:
                stats = log_store.execute(sql).stats
                skipped += stats.rows_skipped + stats.rows_cached
                total += stats.rows_total
        assert skipped / total > 0.5


class TestDrillDownSessionGroups:
    # The invariants the serving layer's subsumption reuse relies on.

    def test_flat_view_is_concatenation(self, log_table):
        from repro.workload.queries import generate_drilldown_session_groups

        config = DrillDownConfig(
            n_sessions=3, clicks_per_session=3, queries_per_click=2, seed=4
        )
        groups = generate_drilldown_session_groups(log_table, config)
        assert len(groups) == 3
        assert all(len(session) == 3 for session in groups)
        flat = generate_drilldown_sessions(log_table, config)
        assert flat == [click for session in groups for click in session]

    def test_refinement_property(self, log_table):
        # Each click's canonical conjunct set contains its parent's:
        # exactly the subsumption precondition (child WHERE = parent
        # AND extra), checked on the parsed plan, not string counts.
        from repro.core.plan import where_conjuncts
        from repro.sql.parser import parse_query
        from repro.workload.queries import generate_drilldown_session_groups

        groups = generate_drilldown_session_groups(
            log_table,
            DrillDownConfig(
                n_sessions=6, clicks_per_session=4, queries_per_click=1
            ),
        )
        strict = transitions = 0
        for session in groups:
            conjunct_sets = [
                frozenset(where_conjuncts(parse_query(click[0])))
                for click in session
            ]
            for parent, child in zip(conjunct_sets, conjunct_sets[1:]):
                assert parent <= child
                transitions += 1
                strict += parent < child
        # Clicks past the first always add an IN restriction; ties can
        # only come from re-sampling an identical conjunct.
        assert strict >= transitions * 0.9

    def test_queries_within_click_share_where(self, log_table):
        from repro.core.plan import where_conjuncts
        from repro.sql.parser import parse_query
        from repro.workload.queries import generate_drilldown_session_groups

        groups = generate_drilldown_session_groups(
            log_table,
            DrillDownConfig(
                n_sessions=2, clicks_per_session=2, queries_per_click=5
            ),
        )
        for session in groups:
            for click in session:
                wheres = {
                    frozenset(where_conjuncts(parse_query(sql)))
                    for sql in click
                }
                assert len(wheres) == 1


class TestTenantMix:
    def test_zipf_weights_shape(self):
        from repro.workload.benchserve import zipf_tenant_weights

        weights = zipf_tenant_weights(6, 1.2)
        assert len(weights) == 6
        assert weights == sorted(weights, reverse=True)
        assert sum(weights) == pytest.approx(1.0)
        # s controls the skew; s=0 is uniform.
        assert zipf_tenant_weights(4, 0.0) == pytest.approx([0.25] * 4)

    def test_assignment_deterministic_and_zipfian(self):
        from collections import Counter

        from repro.workload.benchserve import (
            TenantMixConfig,
            assign_sessions_to_tenants,
        )

        mix = TenantMixConfig(n_tenants=5, zipf_s=1.2, seed=3)
        labels = assign_sessions_to_tenants(400, mix)
        assert labels == assign_sessions_to_tenants(400, mix)
        assert set(labels) <= {f"tenant-{r:02d}" for r in range(5)}
        counts = Counter(labels)
        # Rank 0 dominates and the head outweighs the tail — the
        # Zipfian shape, asserted loosely (it is a random draw).
        assert counts["tenant-00"] == max(counts.values())
        assert counts["tenant-00"] > len(labels) * 0.3

    def test_invalid_mix(self):
        from repro.workload.benchserve import TenantMixConfig

        with pytest.raises(ReproError):
            TenantMixConfig(n_tenants=0)
        with pytest.raises(ReproError):
            TenantMixConfig(zipf_s=-1.0)
