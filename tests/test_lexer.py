"""Tokenizer tests."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import TokenKind, tokenize


class TestTokenize:
    def test_keywords_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        tokens = tokenize("Table_Name foo_1")
        assert tokens[0].kind is TokenKind.IDENT
        assert tokens[0].value == "Table_Name"
        assert tokens[1].value == "foo_1"

    def test_ends_with_end_token(self):
        assert tokenize("")[-1].kind is TokenKind.END

    def test_integers_and_floats(self):
        tokens = tokenize("42 3.14 .5 1e3 2.5E-2")
        values = [t.value for t in tokens[:-1]]
        assert values == [42, 3.14, 0.5, 1000.0, 0.025]
        assert isinstance(values[0], int)
        assert isinstance(values[1], float)

    def test_strings_with_escape(self):
        tokens = tokenize("'hello' 'it''s'")
        assert tokens[0].value == "hello"
        assert tokens[1].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_two_char_symbols(self):
        tokens = tokenize("a != b <= c >= d")
        symbols = [t.value for t in tokens if t.kind is TokenKind.SYMBOL]
        assert symbols == ["!=", "<=", ">="]

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as exc:
            tokenize("a @ b")
        assert exc.value.position == 2

    def test_whitespace_and_newlines(self):
        tokens = tokenize("a\n\t b")
        assert [t.value for t in tokens[:-1]] == ["a", "b"]

    def test_is_helpers(self):
        token = tokenize("SELECT")[0]
        assert token.is_keyword("SELECT")
        assert not token.is_keyword("FROM")
        assert not token.is_symbol("(")
