"""BETWEEN / LIKE / if() dialect extension tests."""

import pytest

from repro.core.expr_eval import evaluate
from repro.errors import SqlSyntaxError
from repro.sql.ast_nodes import BinaryOp, FuncCall, UnaryOp
from repro.sql.parser import parse_query
from repro.testing import assert_results_equal


def _where(clause: str):
    return parse_query(f"SELECT x FROM t WHERE {clause}").where


def _eval(clause: str, **row):
    return evaluate(_where(clause), lambda name: row.get(name))


class TestBetween:
    def test_desugars_to_range_conjunction(self):
        expr = _where("a BETWEEN 1 AND 5")
        assert isinstance(expr, BinaryOp) and expr.op == "AND"
        assert expr.left.op == ">="
        assert expr.right.op == "<="

    def test_inclusive_bounds(self):
        assert _eval("a BETWEEN 1 AND 5", a=1) is True
        assert _eval("a BETWEEN 1 AND 5", a=5) is True
        assert _eval("a BETWEEN 1 AND 5", a=6) is False

    def test_not_between(self):
        expr = _where("a NOT BETWEEN 1 AND 5")
        assert isinstance(expr, UnaryOp) and expr.op == "NOT"
        assert _eval("a NOT BETWEEN 1 AND 5", a=0) is True
        assert _eval("a NOT BETWEEN 1 AND 5", a=3) is False

    def test_between_with_trailing_and(self):
        # BETWEEN's AND must not swallow the logical AND.
        expr = _where("a BETWEEN 1 AND 5 AND b = 2")
        assert expr.op == "AND"
        assert _eval("a BETWEEN 1 AND 5 AND b = 2", a=3, b=2) is True

    def test_between_null_is_null(self):
        assert _eval("a BETWEEN 1 AND 5", a=None) is None

    def test_string_bounds(self):
        assert _eval("s BETWEEN 'b' AND 'd'", s="c") is True

    def test_round_trip(self):
        query = parse_query("SELECT x FROM t WHERE a BETWEEN 1 AND 5")
        assert parse_query(query.sql()) == query


class TestLike:
    def test_becomes_like_call(self):
        expr = _where("s LIKE 'a%'")
        assert isinstance(expr, FuncCall) and expr.name == "like"

    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("abc", "abc", 1),
            ("abc", "abd", 0),
            ("a%", "axxxx", 1),
            ("%c", "abc", 1),
            ("%b%", "abc", 1),
            ("a_c", "abc", 1),
            ("a_c", "abbc", 0),
            ("%", "", 1),
            ("_", "", 0),
            ("a.c", "abc", 0),  # regex metachars are literal
            ("a.c", "a.c", 1),
            ("100%", "100%", 1),
        ],
    )
    def test_pattern_semantics(self, pattern, value, expected):
        assert _eval(f"s LIKE '{pattern}'", s=value) == expected

    def test_not_like(self):
        assert _eval("s NOT LIKE 'a%'", s="b") is True
        assert _eval("s NOT LIKE 'a%'", s="abc") is False

    def test_null_operand(self):
        assert _eval("s LIKE 'a%'", s=None) is None

    def test_requires_string_pattern(self):
        with pytest.raises(SqlSyntaxError):
            _where("s LIKE 5")

    def test_round_trip(self):
        query = parse_query("SELECT x FROM t WHERE s LIKE '%it''s%'")
        assert parse_query(query.sql()) == query


class TestIf:
    def test_branches(self):
        expr = parse_query("SELECT if(a > 1, 'hi', 'lo') FROM t").select[0].expr
        assert evaluate(expr, lambda n: 2) == "hi"
        assert evaluate(expr, lambda n: 0) == "lo"

    def test_null_condition_takes_else(self):
        expr = parse_query("SELECT if(a > 1, 'hi', 'lo') FROM t").select[0].expr
        assert evaluate(expr, lambda n: None) == "lo"

    def test_branches_may_be_null(self):
        expr = parse_query("SELECT if(a > 1, a, NULL) FROM t").select[0].expr
        assert evaluate(expr, lambda n: 5) == 5
        assert evaluate(expr, lambda n: 0) is None

    def test_arity_checked(self):
        from repro.errors import BindError
        from repro.sql.functions import apply_scalar

        with pytest.raises(BindError):
            apply_scalar("if", [1, 2])


class TestEndToEnd:
    """New constructs agree between column-store and row executor."""

    QUERIES = [
        "SELECT COUNT(*) FROM data WHERE latency BETWEEN 100 AND 500",
        "SELECT COUNT(*) FROM data WHERE table_name LIKE '%team00%'",
        "SELECT country, COUNT(*) as c FROM data WHERE table_name NOT LIKE "
        "'%dataset00%' GROUP BY country ORDER BY c DESC LIMIT 4",
        "SELECT if(latency > 300, 'slow', 'fast') as speed, COUNT(*) "
        "FROM data GROUP BY speed ORDER BY speed ASC",
        "SELECT COUNT(*) FROM data WHERE user_name LIKE 'user000_'",
    ]

    @pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
    def test_store_matches_row_reference(self, sql, log_table, log_store):
        from repro.formats.rowexec import execute_on_rows

        parsed = parse_query(sql)
        expected = execute_on_rows(parsed, log_table.schema, log_table.iter_rows())
        assert_results_equal(
            log_store.execute(parsed).rows(),
            list(expected.iter_rows()),
            context=sql,
        )

    def test_like_restriction_can_skip_chunks(self, log_store):
        # Materialized LIKE predicates participate in skipping.
        result = log_store.execute(
            "SELECT COUNT(*) FROM data WHERE table_name LIKE '/cns/%team000%'"
        )
        again = log_store.execute(
            "SELECT COUNT(*) FROM data WHERE table_name LIKE '/cns/%team000%'"
        )
        assert again.rows() == result.rows()
        assert again.stats.rows_skipped > 0
