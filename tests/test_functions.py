"""Scalar function tests."""

import pytest

from repro.errors import BindError
from repro.sql.functions import apply_scalar

# 2011-10-01 00:00:00 UTC
_TS = 1317427200


class TestTimeFunctions:
    def test_date(self):
        assert apply_scalar("date", [_TS]) == "2011-10-01"

    def test_date_end_of_year(self):
        assert apply_scalar("date", [_TS + 91 * 86400]) == "2011-12-31"

    def test_year_month_day_hour(self):
        ts = _TS + 5 * 86400 + 7 * 3600
        assert apply_scalar("year", [ts]) == 2011
        assert apply_scalar("month", [ts]) == 10
        assert apply_scalar("day", [ts]) == 6
        assert apply_scalar("hour", [ts]) == 7

    def test_epoch(self):
        assert apply_scalar("date", [0]) == "1970-01-01"


class TestStringFunctions:
    def test_case(self):
        assert apply_scalar("lower", ["AbC"]) == "abc"
        assert apply_scalar("upper", ["AbC"]) == "ABC"

    def test_length(self):
        assert apply_scalar("length", ["héllo"]) == 5

    def test_contains(self):
        assert apply_scalar("contains", ["web search cat", "cat"]) == 1
        assert apply_scalar("contains", ["web search", "cat"]) == 0

    def test_starts_with(self):
        assert apply_scalar("starts_with", ["/logs/x", "/logs"]) == 1

    def test_substr(self):
        assert apply_scalar("substr", ["abcdef", 1, 3]) == "bcd"
        assert apply_scalar("substr", ["abcdef", 4]) == "ef"

    def test_concat(self):
        assert apply_scalar("concat", ["a", "b", "c"]) == "abc"


class TestNumericFunctions:
    def test_abs_round_floor_ceil(self):
        assert apply_scalar("abs", [-3]) == 3
        assert apply_scalar("round", [2.567, 1]) == 2.6
        assert apply_scalar("floor", [2.9]) == 2
        assert apply_scalar("ceil", [2.1]) == 3

    def test_log2(self):
        assert apply_scalar("log2", [8]) == 3.0
        with pytest.raises(BindError):
            apply_scalar("log2", [0])

    def test_log2_bucket(self):
        # The Figure 5 bucketing: 0 for < 1, then floor(log2)+1.
        assert apply_scalar("log2_bucket", [0.5]) == 0
        assert apply_scalar("log2_bucket", [1]) == 1
        assert apply_scalar("log2_bucket", [2]) == 2
        assert apply_scalar("log2_bucket", [1023]) == 10

    def test_bucket(self):
        assert apply_scalar("bucket", [37, 10]) == 3
        with pytest.raises(BindError):
            apply_scalar("bucket", [5, 0])


class TestNullPropagation:
    @pytest.mark.parametrize(
        "name,args",
        [
            ("date", [None]),
            ("lower", [None]),
            ("contains", [None, "x"]),
            ("contains", ["x", None]),
            ("bucket", [None, 10]),
        ],
    )
    def test_null_in_null_out(self, name, args):
        assert apply_scalar(name, args) is None


class TestArgValidation:
    def test_unknown_function(self):
        with pytest.raises(BindError):
            apply_scalar("nope", [1])

    def test_wrong_arity(self):
        with pytest.raises(BindError):
            apply_scalar("date", [1, 2])
        with pytest.raises(BindError):
            apply_scalar("contains", ["only-one"])
