"""The supervision layer under REAL faults: crash, hang, leak, sweep.

PR 2's process suite proves bit-identity on healthy pools; this suite
kills the pool for real. A seeded
:class:`~repro.testing.process_chaos.ChaosPlan` SIGKILLs workers,
``os._exit``s them and hangs them mid-scan, and the contracts under
test are the PR 8 acceptance criteria:

- **Recovery**: while retries suffice, a chaos run's rows are
  bit-identical to a fault-free serial run and the result says
  ``complete`` (hypothesis-driven over seeded plans);
- **Degradation**: when the budget cannot save a chunk (a persistent
  fault), ``complete=False`` with *exact* row coverage — and strict
  mode (``degrade=False``) raises ``ChunkUnavailableError`` instead;
- **Hygiene**: whatever happened, ``close()`` drains every tracked
  shared-memory segment, survives a failing arena release (satellite
  1), and stays idempotent; the janitor reclaims segments whose owner
  pid died without running atexit.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import tempfile
import uuid
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.executor import ProcessExecutor, SupervisionConfig
from repro.distributed.cluster import ClusterConfig
from repro.errors import (
    ChunkUnavailableError,
    DistributedError,
    ExecutionError,
    StorageError,
)
from repro.storage.arena import (
    MANIFEST_DIR_ENV,
    SEGMENT_PREFIX,
    live_segment_names,
    manifest_dir,
    sweep_orphaned_segments,
)
from repro.testing.process_chaos import ChaosExecutor, ChaosPlan
from repro.workload.generator import LogsConfig, generate_query_logs

_TABLE = generate_query_logs(
    LogsConfig(n_rows=800, n_days=10, n_teams=5, seed=31)
)

_QUERY = (
    "SELECT country, COUNT(*) AS c, SUM(latency) AS s FROM data "
    "GROUP BY country ORDER BY c DESC LIMIT 10"
)


def _options(**overrides) -> DataStoreOptions:
    return DataStoreOptions(
        partition_fields=("country", "table_name"),
        max_chunk_rows=48,
        cache_chunk_results=False,  # every query really rescans
        **overrides,
    )


def _process_store(**overrides) -> DataStore:
    knobs = {
        "executor": "process",
        "workers": 2,
        "task_deadline_seconds": 5.0,
        "task_max_retries": 2,
        "task_backoff_base_seconds": 0.01,
        **overrides,
    }
    return DataStore.from_table(_TABLE, _options(**knobs))


_SERIAL = DataStore.from_table(_TABLE, _options())
_EXPECTED = _SERIAL.execute(_QUERY).sorted_rows()
_PROCESS = _process_store()
_N_CHUNKS = len(_PROCESS.chunk_row_counts)


@contextmanager
def _chaos(store: DataStore, plan: ChaosPlan):
    """Wrap ``store``'s executor in a fresh-sentinel ChaosExecutor."""
    inner = store.executor
    with tempfile.TemporaryDirectory() as flag_dir:
        store.executor = ChaosExecutor(inner, plan, flag_dir)
        try:
            yield store.executor
        finally:
            store.executor = inner


class TestSupervisionKnobValidation:
    # Mirrors TestFaultConfigValidation (PR 3): every knob rejects
    # out-of-range values at construction, not at first use.

    @pytest.mark.parametrize(
        "knobs",
        [
            {"task_deadline_seconds": 0.0},
            {"task_deadline_seconds": 3601.0},
            {"max_retries": -1},
            {"max_retries": 17},
            {"backoff_base_seconds": -0.01},
            {"backoff_base_seconds": 61.0},
            {"backoff_multiplier": 0.99},
            {"watchdog_interval_seconds": 0.0},
            {"watchdog_interval_seconds": 61.0},
            # watchdog slices longer than the deadline never fire
            {"task_deadline_seconds": 1.0, "watchdog_interval_seconds": 2.0},
        ],
    )
    def test_supervision_config_bounds(self, knobs):
        with pytest.raises(ExecutionError):
            SupervisionConfig(**knobs)

    def test_supervision_config_defaults_valid(self):
        config = SupervisionConfig()
        assert config.task_deadline_seconds > 0

    @pytest.mark.parametrize(
        "knobs",
        [
            {"task_deadline_seconds": -1.0},
            {"task_max_retries": 99},
            {"task_backoff_multiplier": 0.0},
            {"watchdog_interval_seconds": 0.0},
        ],
    )
    def test_datastore_options_bounds(self, knobs):
        with pytest.raises(ExecutionError):
            DataStoreOptions(**knobs)

    @pytest.mark.parametrize(
        "knobs",
        [
            {"task_deadline_seconds": 0.0},
            {"task_max_retries": -2},
            {"task_backoff_base_seconds": -0.5},
            {"watchdog_interval_seconds": 90.0},
        ],
    )
    def test_cluster_config_bounds(self, knobs):
        with pytest.raises(DistributedError):
            ClusterConfig(**knobs)

    def test_options_supervision_round_trip(self):
        options = _options(
            task_deadline_seconds=2.5,
            task_max_retries=4,
            watchdog_interval_seconds=0.25,
        )
        config = options.supervision()
        assert config.task_deadline_seconds == 2.5
        assert config.max_retries == 4
        assert config.watchdog_interval_seconds == 0.25


class TestSupervisedRecovery:
    def test_sigkill_mid_scan_recovers_bit_identically(self):
        plan = ChaosPlan(faults=((3, "kill"),))
        with _chaos(_PROCESS, plan):
            result = _PROCESS.execute(_QUERY)
        assert result.complete
        assert result.row_coverage == 1.0
        assert result.sorted_rows() == _EXPECTED
        outcome = _PROCESS.executor.last_outcome
        assert outcome.crashes >= 1
        assert outcome.respawns >= 1

    def test_hang_mid_scan_times_out_and_recovers(self):
        store = _process_store(
            task_deadline_seconds=0.6,
            watchdog_interval_seconds=0.05,
        )
        plan = ChaosPlan(faults=((3, "hang"),), hang_seconds=30.0)
        before = set(live_segment_names())
        try:
            with _chaos(store, plan):
                result = store.execute(_QUERY)
            assert result.complete
            assert result.sorted_rows() == _EXPECTED
            outcome = store.executor.last_outcome
            assert outcome.timeouts >= 1
        finally:
            store.executor.close()
        assert set(live_segment_names()) == before

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_seeded_transient_chaos_is_bit_identical(self, seed):
        # The acceptance property: any seeded plan of one-shot worker
        # deaths ends complete and bit-identical to fault-free serial.
        plan = ChaosPlan.seeded(
            seed,
            range(_N_CHUNKS),
            kill_rate=0.15,
            exit_rate=0.1,
        )
        with _chaos(_PROCESS, plan):
            result = _PROCESS.execute(_QUERY)
        assert result.complete
        assert result.row_coverage == 1.0
        assert result.sorted_rows() == _EXPECTED

    def test_fault_events_use_pr3_vocabulary(self):
        plan = ChaosPlan(faults=((3, "kill"),))
        with _chaos(_PROCESS, plan):
            _PROCESS.execute(_QUERY)
        outcome = _PROCESS.executor.last_outcome
        kinds = {event.kind for event in outcome.events}
        assert kinds <= {"crash", "timeout", "retry", "task-unserved"}
        assert "crash" in kinds


class TestGracefulDegradation:
    def test_persistent_kill_degrades_with_exact_coverage(self):
        target = 3
        plan = ChaosPlan(faults=((target, "kill"),), persistent=(target,))
        with _chaos(_PROCESS, plan):
            result = _PROCESS.execute(_QUERY)
        assert not result.complete
        lost = _PROCESS.chunk_row_counts[target]
        assert result.stats.chunks_unserved == 1
        assert result.stats.rows_unserved == lost
        assert result.row_coverage == (_PROCESS.n_rows - lost) / _PROCESS.n_rows
        # Only the poisoned chunk is lost: the isolation pass saves
        # every wave sibling that died as collateral.
        outcome = _PROCESS.executor.last_outcome
        assert len(outcome.unserved) == 1
        assert {event.kind for event in outcome.events} >= {
            "crash",
            "task-unserved",
        }

    def test_strict_mode_raises_chunk_unavailable(self):
        store = _process_store(degrade=False, task_max_retries=0)
        target = 3
        plan = ChaosPlan(faults=((target, "kill"),), persistent=(target,))
        before = set(live_segment_names())
        try:
            with _chaos(store, plan):
                with pytest.raises(ChunkUnavailableError):
                    store.execute(_QUERY)
        finally:
            store.executor.close()
        assert set(live_segment_names()) == before

    def test_degraded_query_counters_tick(self):
        from repro.monitoring import counters

        before = counters.snapshot().get("datastore.scan.degraded_queries", 0)
        plan = ChaosPlan(faults=((3, "kill"),), persistent=(3,))
        with _chaos(_PROCESS, plan):
            _PROCESS.execute(_QUERY)
        after = counters.snapshot().get("datastore.scan.degraded_queries", 0)
        assert after == before + 1


class _ExplodingArena:
    """An arena stub whose release always fails (satellite 1)."""

    released = 0

    def release(self) -> None:
        type(self).released += 1
        raise StorageError("injected release failure")


class TestCloseRobustness:
    def test_close_releases_survivors_despite_failing_arena(self):
        before = set(live_segment_names())
        store = _process_store()
        store.execute(_QUERY)  # force arena creation + tracking
        executor = store.executor
        assert isinstance(executor, ProcessExecutor)
        assert executor._arenas, "process scan should have built an arena"
        # The exploding stub sits FIRST, so a naive loop would abort
        # before reaching the real arena — the regression this pins.
        executor._arenas.insert(0, _ExplodingArena())
        with pytest.raises(ExecutionError, match="arena release"):
            executor.close()
        # The real segment still drained despite the stub's failure.
        assert set(live_segment_names()) == before
        assert _ExplodingArena.released >= 1
        executor.close()  # second close: clean no-op

    def test_close_is_idempotent(self):
        before = set(live_segment_names())
        store = _process_store()
        store.execute(_QUERY)
        store.executor.close()
        store.executor.close()
        assert set(live_segment_names()) == before

    def test_close_after_chaos_run_leaves_no_segments(self):
        # Module-level stores keep their segments live across tests, so
        # the assertion is differential: everything this store created
        # is gone again after close, tracked and on /dev/shm alike.
        before_live = set(live_segment_names())
        before_shm = _shm_repro_segments()
        store = _process_store()
        plan = ChaosPlan.seeded(7, range(_N_CHUNKS), kill_rate=0.2)
        with _chaos(store, plan):
            store.execute(_QUERY)
        assert set(live_segment_names()) > before_live  # arena was built
        store.executor.close()
        assert set(live_segment_names()) == before_live
        assert _shm_repro_segments() == before_shm


def _shm_repro_segments() -> set[str]:
    if not os.path.isdir("/dev/shm"):
        return set()
    return {
        name
        for name in os.listdir("/dev/shm")
        if name.startswith(SEGMENT_PREFIX)
    }


def _dead_pid() -> int:
    """A pid guaranteed to be dead (a reaped child of this process)."""
    process = multiprocessing.get_context("fork").Process(target=_noop)
    process.start()
    process.join()
    return process.pid


def _noop() -> None:
    return None


def _make_orphan_segment() -> str:
    """Create a repro-prefixed segment nobody tracks, tracker-silenced."""
    name = f"{SEGMENT_PREFIX}orphan_{uuid.uuid4().hex[:8]}"
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        segment = shared_memory.SharedMemory(create=True, name=name, size=64)
    finally:
        resource_tracker.register = original_register
    segment.close()
    return name


class TestArenaJanitor:
    @pytest.fixture(autouse=True)
    def _isolated_manifest_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(MANIFEST_DIR_ENV, str(tmp_path / "manifests"))

    def test_sweep_reclaims_dead_owner_segment(self):
        name = _make_orphan_segment()
        pid = _dead_pid()
        path = os.path.join(manifest_dir(), f"arenas_{pid}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"pid": pid, "segments": [name]}, handle)
        assert os.path.exists(f"/dev/shm/{name}")
        reclaimed = sweep_orphaned_segments()
        assert name in reclaimed
        assert not os.path.exists(f"/dev/shm/{name}")
        assert not os.path.exists(path)  # manifest consumed

    def test_sweep_leaves_live_owners_alone(self):
        name = _make_orphan_segment()
        try:
            path = os.path.join(manifest_dir(), f"arenas_{os.getpid()}.json")
            with open(path, "w", encoding="utf-8") as handle:
                json.dump({"pid": os.getpid(), "segments": [name]}, handle)
            assert sweep_orphaned_segments() == []
            assert os.path.exists(f"/dev/shm/{name}")
            assert os.path.exists(path)
        finally:
            segment = shared_memory.SharedMemory(name=name)
            segment.close()
            segment.unlink()

    def test_sweep_never_unlinks_foreign_names(self):
        pid = _dead_pid()
        path = os.path.join(manifest_dir(), f"arenas_{pid}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"pid": pid, "segments": ["not_ours", "/etc/passwd"]}, handle
            )
        assert sweep_orphaned_segments() == []
        assert not os.path.exists(path)  # dead manifest still removed

    def test_sweep_tolerates_corrupt_manifest(self):
        pid = _dead_pid()
        path = os.path.join(manifest_dir(), f"arenas_{pid}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert sweep_orphaned_segments() == []
        assert not os.path.exists(path)

    def test_process_store_maintains_manifest(self):
        before = set(live_segment_names())
        store = _process_store()
        store.execute(_QUERY)
        created = set(live_segment_names()) - before
        assert created, "process scan should have built an arena"
        path = os.path.join(manifest_dir(), f"arenas_{os.getpid()}.json")
        assert os.path.exists(path)
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        assert created <= set(manifest["segments"])
        store.executor.close()
        # The released segments leave the manifest (module-level stores
        # may keep theirs listed; an empty manifest is removed).
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                manifest = json.load(handle)
            assert not created & set(manifest["segments"])
