"""Bit-flip fuzzing of the store file format.

The PDS2 format carries a whole-body CRC32, so *any* single-bit
corruption of a saved store must surface as a StorageError (or an
FSCK010 finding via fsck_file) — never as a successfully-loaded store
with silently wrong data.
"""

import random

import pytest

from repro.analysis import fsck_file
from repro.core.datastore import DataStore, DataStoreOptions
from repro.errors import StorageError
from repro.storage.serde import load_store, save_store
from repro.workload.generator import LogsConfig, generate_query_logs

_N_FLIPS = 60
_SEED = 20260806


@pytest.fixture(scope="module")
def saved_store(tmp_path_factory):
    table = generate_query_logs(
        LogsConfig(n_rows=600, n_days=15, n_teams=6, seed=21)
    )
    store = DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=128,
            reorder_rows=True,
        ),
    )
    path = tmp_path_factory.mktemp("corruption") / "store.pds"
    save_store(store, str(path))
    return store, str(path), path.read_bytes()


def _flip_bit(blob: bytes, position: int, bit: int) -> bytes:
    corrupted = bytearray(blob)
    corrupted[position] ^= 1 << bit
    return bytes(corrupted)


def test_pristine_file_loads(saved_store):
    store, path, _ = saved_store
    loaded = load_store(path)
    assert loaded.n_rows == store.n_rows


def test_every_single_bit_flip_is_detected(saved_store, tmp_path):
    _, _, blob = saved_store
    rng = random.Random(_SEED)
    target = tmp_path / "flipped.pds"
    positions = [
        (rng.randrange(len(blob)), rng.randrange(8)) for _ in range(_N_FLIPS)
    ]
    # Always include the tricky regions: magic, checksum field, first
    # body byte and the final byte.
    positions += [(0, 0), (4, 7), (8, 0), (len(blob) - 1, 3)]
    for position, bit in positions:
        target.write_bytes(_flip_bit(blob, position, bit))
        with pytest.raises(StorageError):
            load_store(str(target))


def test_bit_flips_surface_as_fsck_findings(saved_store, tmp_path):
    _, _, blob = saved_store
    rng = random.Random(_SEED + 1)
    target = tmp_path / "flipped.pds"
    for _ in range(10):
        position, bit = rng.randrange(len(blob)), rng.randrange(8)
        target.write_bytes(_flip_bit(blob, position, bit))
        report = fsck_file(str(target))
        assert report.codes() == {"FSCK010"}, (position, bit)


def test_truncation_is_detected(saved_store, tmp_path):
    _, _, blob = saved_store
    rng = random.Random(_SEED + 2)
    target = tmp_path / "short.pds"
    lengths = [0, 1, 4, 7, 8, len(blob) - 1] + [
        rng.randrange(9, len(blob)) for _ in range(10)
    ]
    for length in lengths:
        target.write_bytes(blob[:length])
        with pytest.raises(StorageError):
            load_store(str(target))


def test_extra_trailing_bytes_detected(saved_store, tmp_path):
    # Appended garbage changes the body the checksum covers.
    _, _, blob = saved_store
    target = tmp_path / "padded.pds"
    target.write_bytes(blob + b"\x00\x00\x00\x00")
    with pytest.raises(StorageError):
        load_store(str(target))


def test_corruption_never_yields_wrong_data(saved_store, tmp_path):
    """The property the CRC buys: loads either succeed with identical
    query results or raise — flipped files never return wrong rows."""
    store, _, blob = saved_store
    sql = "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c"
    expected = store.execute(sql).rows()
    rng = random.Random(_SEED + 3)
    target = tmp_path / "maybe.pds"
    for _ in range(15):
        position, bit = rng.randrange(len(blob)), rng.randrange(8)
        target.write_bytes(_flip_bit(blob, position, bit))
        try:
            loaded = load_store(str(target))
        except StorageError:
            continue
        assert loaded.execute(sql).rows() == expected
