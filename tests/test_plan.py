"""GroupPlan / alias-resolution tests."""

import pytest

from repro.core.plan import (
    is_aggregation_query,
    plan_group_query,
    resolve_group_aliases,
)
from repro.errors import UnsupportedQueryError
from repro.sql.ast_nodes import FieldRef, FuncCall
from repro.sql.parser import parse_query


class TestIsAggregationQuery:
    def test_plain_projection(self):
        assert not is_aggregation_query(parse_query("SELECT a FROM t"))

    def test_group_by(self):
        assert is_aggregation_query(
            parse_query("SELECT a FROM t GROUP BY a")
        )

    def test_bare_aggregate(self):
        assert is_aggregation_query(parse_query("SELECT COUNT(*) FROM t"))

    def test_aggregate_inside_expression(self):
        assert is_aggregation_query(
            parse_query("SELECT SUM(x) / 2 FROM t")
        )


class TestPlanGroupQuery:
    def test_group_expr_becomes_placeholder(self):
        plan = plan_group_query(
            parse_query("SELECT a, COUNT(*) FROM t GROUP BY a")
        )
        assert plan.items[0][1] == FieldRef("__group_0")
        assert plan.items[1][1] == FieldRef("__agg_0")
        assert len(plan.aggregates) == 1

    def test_duplicate_aggregates_deduped(self):
        plan = plan_group_query(
            parse_query("SELECT COUNT(*), COUNT(*) + 1 as c1 FROM t")
        )
        assert len(plan.aggregates) == 1

    def test_distinct_aggregates_kept_separate(self):
        plan = plan_group_query(
            parse_query("SELECT SUM(x), SUM(y) FROM t")
        )
        assert len(plan.aggregates) == 2

    def test_expression_around_aggregate(self):
        plan = plan_group_query(parse_query("SELECT SUM(x) / COUNT(*) FROM t"))
        (name, expr), = plan.items
        refs = {n.name for n in _walk_fieldrefs(expr)}
        assert refs == {"__agg_0", "__agg_1"}

    def test_expression_combining_group_and_aggregate(self):
        plan = plan_group_query(
            parse_query(
                "SELECT concat(a, 'x') as k, COUNT(*) FROM t GROUP BY a"
            )
        )
        refs = {n.name for n in _walk_fieldrefs(plan.items[0][1])}
        assert refs == {"__group_0"}

    def test_ungrouped_field_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            plan_group_query(parse_query("SELECT a, COUNT(*) FROM t"))

    def test_group_by_full_expression_matches_structurally(self):
        plan = plan_group_query(
            parse_query(
                "SELECT date(ts), COUNT(*) FROM t GROUP BY date(ts)"
            )
        )
        assert plan.items[0][1] == FieldRef("__group_0")


class TestResolveGroupAliases:
    def test_alias_replaced(self):
        query = resolve_group_aliases(
            parse_query("SELECT date(ts) as d, COUNT(*) FROM t GROUP BY d")
        )
        assert query.group_by == (FuncCall("date", (FieldRef("ts"),)),)

    def test_plain_column_untouched(self):
        query = resolve_group_aliases(
            parse_query("SELECT a as b, COUNT(*) FROM t GROUP BY a")
        )
        assert query.group_by == (FieldRef("a"),)

    def test_no_group_by_is_identity(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        assert resolve_group_aliases(query) is query


def _walk_fieldrefs(expr):
    from repro.sql.ast_nodes import walk

    return [n for n in walk(expr) if isinstance(n, FieldRef)]
