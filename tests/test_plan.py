"""GroupPlan / alias-resolution tests."""

import pytest

from repro.core.plan import (
    is_aggregation_query,
    plan_group_query,
    resolve_group_aliases,
)
from repro.errors import UnsupportedQueryError
from repro.sql.ast_nodes import FieldRef, FuncCall
from repro.sql.parser import parse_query


class TestIsAggregationQuery:
    def test_plain_projection(self):
        assert not is_aggregation_query(parse_query("SELECT a FROM t"))

    def test_group_by(self):
        assert is_aggregation_query(
            parse_query("SELECT a FROM t GROUP BY a")
        )

    def test_bare_aggregate(self):
        assert is_aggregation_query(parse_query("SELECT COUNT(*) FROM t"))

    def test_aggregate_inside_expression(self):
        assert is_aggregation_query(
            parse_query("SELECT SUM(x) / 2 FROM t")
        )


class TestPlanGroupQuery:
    def test_group_expr_becomes_placeholder(self):
        plan = plan_group_query(
            parse_query("SELECT a, COUNT(*) FROM t GROUP BY a")
        )
        assert plan.items[0][1] == FieldRef("__group_0")
        assert plan.items[1][1] == FieldRef("__agg_0")
        assert len(plan.aggregates) == 1

    def test_duplicate_aggregates_deduped(self):
        plan = plan_group_query(
            parse_query("SELECT COUNT(*), COUNT(*) + 1 as c1 FROM t")
        )
        assert len(plan.aggregates) == 1

    def test_distinct_aggregates_kept_separate(self):
        plan = plan_group_query(
            parse_query("SELECT SUM(x), SUM(y) FROM t")
        )
        assert len(plan.aggregates) == 2

    def test_expression_around_aggregate(self):
        plan = plan_group_query(parse_query("SELECT SUM(x) / COUNT(*) FROM t"))
        (name, expr), = plan.items
        refs = {n.name for n in _walk_fieldrefs(expr)}
        assert refs == {"__agg_0", "__agg_1"}

    def test_expression_combining_group_and_aggregate(self):
        plan = plan_group_query(
            parse_query(
                "SELECT concat(a, 'x') as k, COUNT(*) FROM t GROUP BY a"
            )
        )
        refs = {n.name for n in _walk_fieldrefs(plan.items[0][1])}
        assert refs == {"__group_0"}

    def test_ungrouped_field_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            plan_group_query(parse_query("SELECT a, COUNT(*) FROM t"))

    def test_group_by_full_expression_matches_structurally(self):
        plan = plan_group_query(
            parse_query(
                "SELECT date(ts), COUNT(*) FROM t GROUP BY date(ts)"
            )
        )
        assert plan.items[0][1] == FieldRef("__group_0")


class TestResolveGroupAliases:
    def test_alias_replaced(self):
        query = resolve_group_aliases(
            parse_query("SELECT date(ts) as d, COUNT(*) FROM t GROUP BY d")
        )
        assert query.group_by == (FuncCall("date", (FieldRef("ts"),)),)

    def test_plain_column_untouched(self):
        query = resolve_group_aliases(
            parse_query("SELECT a as b, COUNT(*) FROM t GROUP BY a")
        )
        assert query.group_by == (FieldRef("a"),)

    def test_no_group_by_is_identity(self):
        query = parse_query("SELECT COUNT(*) FROM t")
        assert resolve_group_aliases(query) is query


def _walk_fieldrefs(expr):
    from repro.sql.ast_nodes import walk

    return [n for n in walk(expr) if isinstance(n, FieldRef)]


class TestCanonicalization:
    # The semantic result cache keys on canonical-plan fingerprints;
    # these tests pin what "the same query" means.

    def _fp(self, sql: str) -> str:
        from repro.core.plan import query_fingerprint

        return query_fingerprint(parse_query(sql))

    def test_conjunct_order_invariant(self):
        assert self._fp(
            "SELECT COUNT(*) FROM t WHERE a = 1 AND b = 2"
        ) == self._fp("SELECT COUNT(*) FROM t WHERE b = 2 AND a = 1")

    def test_in_list_order_and_duplicates_invariant(self):
        assert self._fp(
            "SELECT COUNT(*) FROM t WHERE c IN ('x', 'y', 'x')"
        ) == self._fp("SELECT COUNT(*) FROM t WHERE c IN ('y', 'x')")

    def test_nested_and_flattens(self):
        assert self._fp(
            "SELECT COUNT(*) FROM t WHERE (a = 1 AND b = 2) AND c = 3"
        ) == self._fp(
            "SELECT COUNT(*) FROM t WHERE a = 1 AND (c = 3 AND b = 2)"
        )

    def test_or_disjunct_order_invariant(self):
        assert self._fp(
            "SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2"
        ) == self._fp("SELECT COUNT(*) FROM t WHERE b = 2 OR a = 1")

    def test_different_restrictions_differ(self):
        assert self._fp(
            "SELECT COUNT(*) FROM t WHERE a = 1"
        ) != self._fp("SELECT COUNT(*) FROM t WHERE a = 2")

    def test_select_order_is_load_bearing(self):
        # Output column order changes the result; canonicalization must
        # never touch it.
        assert self._fp("SELECT a, b FROM t") != self._fp(
            "SELECT b, a FROM t"
        )

    def test_canonical_query_only_rewrites_where(self):
        from repro.core.plan import canonical_query

        query = parse_query(
            "SELECT a, COUNT(*) as c FROM t WHERE b = 2 AND a = 1 "
            "GROUP BY a ORDER BY c DESC LIMIT 5"
        )
        canonical = canonical_query(query)
        assert canonical.where.sql() == "((a = 1) AND (b = 2))"
        assert [item.expr.sql() for item in canonical.select] == [
            item.expr.sql() for item in query.select
        ]
        assert canonical.limit == query.limit

    def test_where_conjuncts(self):
        from repro.core.plan import where_conjuncts

        query = parse_query(
            "SELECT COUNT(*) FROM t WHERE b = 2 AND a IN (3, 1)"
        )
        assert where_conjuncts(query) == ("(a IN (1, 3))", "(b = 2)")
        assert where_conjuncts(parse_query("SELECT a FROM t")) == ()

    def test_conjunct_sets_nest_for_refinements(self):
        from repro.core.plan import where_conjuncts

        parent = frozenset(
            where_conjuncts(
                parse_query("SELECT COUNT(*) FROM t WHERE a = 1")
            )
        )
        child = frozenset(
            where_conjuncts(
                parse_query(
                    "SELECT COUNT(*) FROM t WHERE b IN (2, 3) AND a = 1"
                )
            )
        )
        assert parent < child
