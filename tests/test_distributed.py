"""Distributed execution tests — sharding, tree, cluster simulation."""

import numpy as np
import pytest

from repro.core.datastore import DataStore, DataStoreOptions
from repro.distributed import (
    ClusterConfig,
    ComputationTree,
    MachineConfig,
    SimulatedCluster,
    decompose_query,
    merge_group_partials,
    shard_table,
)
from repro.errors import DistributedError, UnsupportedQueryError
from repro.formats.rowexec import execute_on_rows
from repro.sql.parser import parse_query
from repro.testing import SanitizingExecutor, assert_results_equal
from tests.conftest import make_store


_OPTIONS = DataStoreOptions(
    partition_fields=("country", "table_name"),
    max_chunk_rows=150,
    reorder_rows=True,
)


class TestShardTable:
    def test_covers_all_rows(self, log_table):
        shards = shard_table(log_table, 7, seed=1)
        assert sum(s.n_rows for s in shards) == log_table.n_rows

    def test_roughly_balanced(self, log_table):
        shards = shard_table(log_table, 8, seed=2)
        sizes = [s.n_rows for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_multiset_preserved(self, log_table):
        shards = shard_table(log_table, 4, seed=3)
        combined = []
        for shard in shards:
            combined.extend(shard.column("country").values)
        assert sorted(combined) == sorted(log_table.column("country").values)

    def test_invalid_counts(self, log_table):
        with pytest.raises(DistributedError):
            shard_table(log_table, 0)
        with pytest.raises(DistributedError):
            shard_table(log_table, log_table.n_rows + 1)


class TestDecomposeQuery:
    def test_paper_example_shape(self):
        leaf, merge = decompose_query(
            parse_query("SELECT a, SUM(x) FROM data GROUP BY a")
        )
        assert "SUM" in leaf.sql()
        assert merge.table == "partials"
        assert "SUM(a0)" in merge.sql()

    def test_count_becomes_sum(self):
        __, merge = decompose_query(
            parse_query("SELECT a, COUNT(*) FROM data GROUP BY a")
        )
        assert "SUM(a0)" in merge.sql()

    def test_avg_splits_into_sum_and_count(self):
        leaf, merge = decompose_query(
            parse_query("SELECT a, AVG(x) FROM data GROUP BY a")
        )
        assert "SUM(x)" in leaf.sql()
        assert "COUNT(x)" in leaf.sql()
        assert "/" in merge.sql()

    def test_exact_count_distinct_rejected(self):
        with pytest.raises(UnsupportedQueryError):
            decompose_query(
                parse_query("SELECT a, COUNT(DISTINCT x) FROM data GROUP BY a")
            )

    def test_decomposition_is_semantically_correct(self, log_table):
        """leaf-per-shard + merge == direct execution (the Section 4 rewrite)."""
        query = parse_query(
            "SELECT country, COUNT(*) as c, SUM(latency) as s, AVG(latency) as a "
            "FROM data GROUP BY country ORDER BY c DESC LIMIT 10"
        )
        leaf, merge = decompose_query(query)
        shards = shard_table(log_table, 4, seed=5)
        partial_rows = []
        for shard in shards:
            result = execute_on_rows(leaf, shard.schema, shard.iter_rows())
            partial_rows.extend(result.iter_rows())
        merged = execute_on_rows(
            merge,
            # the partials table schema comes from the leaf output
            execute_on_rows(leaf, shards[0].schema, iter([])).schema,
            iter(partial_rows),
        )
        direct = execute_on_rows(
            parse_query(
                "SELECT country as g0, COUNT(*) as a0, SUM(latency) as a1, "
                "AVG(latency) as a2 FROM data GROUP BY country"
            ),
            log_table.schema,
            log_table.iter_rows(),
        )
        assert_results_equal(
            sorted(merged.iter_rows()), sorted(direct.iter_rows())
        )


class TestComputationTree:
    def test_depth(self):
        assert ComputationTree(1, fanout=8).depth == 1
        assert ComputationTree(8, fanout=8).depth == 1
        assert ComputationTree(9, fanout=8).depth == 2
        assert ComputationTree(64, fanout=8).depth == 2
        assert ComputationTree(65, fanout=8).depth == 3

    def test_invalid(self):
        with pytest.raises(DistributedError):
            ComputationTree(0)
        with pytest.raises(DistributedError):
            ComputationTree(4, fanout=1)

    def test_merge_is_associative_across_levels(self, log_table):
        """Merging with different fanouts yields identical results."""
        query = (
            "SELECT country, COUNT(*) as c, COUNT(DISTINCT table_name) as cd "
            "FROM data GROUP BY country ORDER BY c DESC LIMIT 10"
        )
        shards = shard_table(log_table, 6, seed=7)
        stores = [DataStore.from_table(s, _OPTIONS) for s in shards]
        partials = [store.execute_partials(query)[1] for store in stores]
        from repro.distributed.tree import finalize_partials

        results = []
        for fanout in (2, 3, 8):
            merged, __ = ComputationTree(6, fanout=fanout).merge_levels(
                [dict(p) for p in partials]
            )
            results.append(
                list(finalize_partials(parse_query(query), merged).iter_rows())
            )
        assert results[0] == results[1] == results[2]

    def test_merge_does_not_mutate_inputs(self, log_table):
        query = "SELECT country, COUNT(*) as c FROM data GROUP BY country"
        store = make_store(log_table)
        __, partial = store.execute_partials(query)
        key = next(iter(partial))
        before = partial[key][1][0].count
        merge_group_partials([partial, partial])
        assert partial[key][1][0].count == before


class TestSimulatedCluster:
    @pytest.fixture(scope="class")
    def cluster(self, log_table):
        return SimulatedCluster.build(
            log_table,
            n_shards=6,
            store_options=_OPTIONS,
            config=ClusterConfig(n_machines=8, seed=4),
        )

    def test_results_match_single_node(self, cluster, log_table):
        single = make_store(log_table)
        for query in (
            "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT COUNT(*) FROM data WHERE latency > 100",
            "SELECT country, COUNT(DISTINCT user_name) as d FROM data GROUP BY country ORDER BY d DESC LIMIT 5",
        ):
            distributed, __ = cluster.execute(query)
            assert_results_equal(
                distributed.rows(), single.execute(query).rows(), context=query
            )

    def test_parallel_executor_identical_to_serial(self, log_table):
        """Fanning shard sub-queries over threads changes nothing
        observable: results, ScanStats counters and even the simulated
        cost-model metrics match the serial cluster exactly (the RNG
        draws stay on the merge thread in shard order)."""
        serial = SimulatedCluster.build(
            log_table,
            n_shards=6,
            store_options=_OPTIONS,
            config=ClusterConfig(n_machines=8, seed=4),
        )
        parallel = SimulatedCluster.build(
            log_table,
            n_shards=6,
            store_options=_OPTIONS,
            config=ClusterConfig(
                n_machines=8, seed=4, executor="parallel", workers=4
            ),
        )
        for query in (
            "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT COUNT(*) FROM data WHERE latency > 100",
            "SELECT table_name, SUM(latency) as s FROM data GROUP BY table_name ORDER BY s DESC LIMIT 8",
        ):
            serial_result, serial_metrics = serial.execute(query)
            parallel_result, parallel_metrics = parallel.execute(query)
            assert serial_result.rows() == parallel_result.rows(), query
            assert (
                serial_metrics.latency_seconds
                == parallel_metrics.latency_seconds
            ), query
            assert (
                serial_metrics.bytes_loaded_from_disk
                == parallel_metrics.bytes_loaded_from_disk
            ), query

    def test_sanitizer_clean_over_cluster(self, log_table):
        """Both fan-out seams run under the shared-state sanitizer:
        the cluster's shard dispatch and every shard store's chunk
        scans. A sub-query that mutated its captures (the statically
        certified REP011 contract) would raise here."""
        cluster = SimulatedCluster.build(
            log_table,
            n_shards=5,
            store_options=_OPTIONS,
            config=ClusterConfig(
                n_machines=6, seed=9, executor="parallel", workers=4
            ),
        )
        cluster._executor = SanitizingExecutor(cluster._executor)
        for shard in cluster.shards:
            shard.store.executor = SanitizingExecutor(shard.store.executor)
        single = make_store(log_table)
        for query in (
            "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 10",
            "SELECT table_name, SUM(latency) as s FROM data GROUP BY table_name ORDER BY s DESC LIMIT 8",
        ):
            distributed, __ = cluster.execute(query)
            assert_results_equal(
                distributed.rows(), single.execute(query).rows(), context=query
            )
        assert cluster._executor.checked_submissions >= 2
        assert all(
            shard.store.executor.checked_submissions >= 2
            for shard in cluster.shards
        )

    def test_first_query_loads_from_disk_then_memory(self, log_table):
        cluster = SimulatedCluster.build(
            log_table,
            n_shards=4,
            store_options=_OPTIONS,
            config=ClusterConfig(n_machines=4, seed=9),
        )
        query = "SELECT country, COUNT(*) FROM data GROUP BY country"
        __, first = cluster.execute(query)
        __, second = cluster.execute(query)
        assert first.bytes_loaded_from_disk > 0
        assert second.bytes_loaded_from_disk == 0
        assert second.served_from_memory

    def test_disk_bytes_increase_latency(self, log_table):
        cluster = SimulatedCluster.build(
            log_table,
            n_shards=4,
            store_options=_OPTIONS,
            config=ClusterConfig(
                n_machines=4,
                seed=10,
                load_sigma=0.0,
                straggler_probability=0.0,
            ),
        )
        query = "SELECT table_name, COUNT(*) as c FROM data GROUP BY table_name ORDER BY c DESC LIMIT 5"
        __, cold = cluster.execute(query)
        __, warm = cluster.execute(query)
        assert cold.latency_seconds > warm.latency_seconds

    def test_replication_tames_stragglers(self, log_table):
        """With replicas, a straggling machine rarely defines latency."""
        def run(replication: int) -> float:
            cluster = SimulatedCluster.build(
                log_table,
                n_shards=6,
                store_options=_OPTIONS,
                config=ClusterConfig(
                    n_machines=8,
                    seed=42,
                    replication=replication,
                    straggler_probability=0.2,
                    straggler_slowdown=50.0,
                ),
            )
            query = "SELECT country, COUNT(*) FROM data GROUP BY country"
            cluster.execute(query)  # warm memory
            total = 0.0
            for __ in range(20):
                __, metrics = cluster.execute(query)
                total += metrics.latency_seconds
            return total

        assert run(2) < run(1)

    def test_replica_placement_distinct_machines(self, cluster):
        for shard_id in range(cluster.n_shards):
            machines = cluster.placement_of(shard_id)
            assert len(machines) == len(set(machines)) == 2

    def test_stats_aggregate_over_shards(self, cluster, log_table):
        result, metrics = cluster.execute(
            "SELECT COUNT(*) FROM data WHERE country = 'US'"
        )
        assert metrics.stats.rows_total == log_table.n_rows
        assert metrics.sub_queries == cluster.n_shards

    def test_projection_query_distributed(self, cluster, log_table):
        single = make_store(log_table)
        query = "SELECT country, latency FROM data WHERE latency > 3000 ORDER BY latency DESC LIMIT 5"
        distributed, __ = cluster.execute(query)
        assert_results_equal(
            distributed.rows(), single.execute(query).rows(), context=query
        )

    def test_invalid_config(self):
        with pytest.raises(DistributedError):
            ClusterConfig(n_machines=0)
        with pytest.raises(DistributedError):
            ClusterConfig(n_machines=2, replication=3)


class TestClusterConfigValidation:
    def test_unknown_executor(self):
        with pytest.raises(DistributedError):
            ClusterConfig(executor="gpu")

    def test_workers_below_one(self):
        with pytest.raises(DistributedError):
            ClusterConfig(executor="parallel", workers=0)

    def test_fanout_below_two(self):
        with pytest.raises(DistributedError):
            ClusterConfig(fanout=1)

    def test_negative_load_sigma(self):
        with pytest.raises(DistributedError):
            ClusterConfig(load_sigma=-0.1)

    def test_straggler_probability_out_of_range(self):
        with pytest.raises(DistributedError):
            ClusterConfig(straggler_probability=1.5)
        with pytest.raises(DistributedError):
            ClusterConfig(straggler_probability=-0.1)

    def test_straggler_slowdown_below_one(self):
        with pytest.raises(DistributedError):
            ClusterConfig(straggler_slowdown=0.5)

    def test_valid_knobs_accepted(self):
        config = ClusterConfig(
            executor="parallel",
            workers=2,
            fanout=4,
            load_sigma=0.0,
            straggler_probability=1.0,
            straggler_slowdown=1.0,
        )
        assert config.fanout == 4


class TestMachineMemory:
    def test_oversized_entry_never_resident(self):
        from repro.distributed.cluster import _MachineMemory

        memory = _MachineMemory(capacity_bytes=1000)
        # An entry larger than the whole budget streams from disk on
        # every touch — it must not be admitted (it could never be
        # evicted down below capacity) and must keep charging disk.
        assert memory.touch(("s", "huge"), 5000) == 5000
        assert memory.touch(("s", "huge"), 5000) == 5000
        # Small entries still cache normally alongside it.
        assert memory.touch(("s", "small"), 100) == 100
        assert memory.touch(("s", "small"), 100) == 0

    def test_eviction_keeps_usage_bounded(self):
        from repro.distributed.cluster import _MachineMemory

        memory = _MachineMemory(capacity_bytes=250)
        for index in range(10):
            memory.touch(("s", index), 100)
        resident = sum(memory._resident.values())
        assert resident <= 250
        # LRU: the most recent entry survived.
        assert ("s", 9) in memory._resident


class TestTreeDepthEdges:
    def test_single_leaf_any_fanout(self):
        assert ComputationTree(1, fanout=2).depth == 1
        assert ComputationTree(1, fanout=16).depth == 1

    def test_exactly_fanout_leaves(self):
        assert ComputationTree(3, fanout=3).depth == 1
        assert ComputationTree(16, fanout=16).depth == 1

    def test_one_more_than_fanout(self):
        assert ComputationTree(4, fanout=3).depth == 2
        assert ComputationTree(17, fanout=16).depth == 2


class TestPlacement:
    def test_primary_first_and_distinct(self, log_table):
        cluster = SimulatedCluster.build(
            log_table, n_shards=5, store_options=_OPTIONS,
            config=ClusterConfig(n_machines=6, replication=3, seed=11),
        )
        for shard_id in range(cluster.n_shards):
            machines = cluster.placement_of(shard_id)
            assert len(machines) == 3
            assert len(set(machines)) == 3
            assert all(0 <= m < 6 for m in machines)
            # The first entry is the primary the dispatcher hedges from.
            assert machines[0] == cluster._placement[shard_id][0]

    def test_placement_of_returns_a_copy(self, log_table):
        cluster = SimulatedCluster.build(
            log_table, n_shards=2, store_options=_OPTIONS,
            config=ClusterConfig(n_machines=4, seed=12),
        )
        machines = cluster.placement_of(0)
        machines.append(99)
        assert 99 not in cluster.placement_of(0)


class TestQueryMetricsFields:
    def test_served_from_memory(self):
        from repro.distributed.cluster import QueryMetrics

        assert QueryMetrics().served_from_memory
        assert not QueryMetrics(bytes_loaded_from_disk=1).served_from_memory

    def test_defaults_are_fault_free(self):
        from repro.distributed.cluster import QueryMetrics

        metrics = QueryMetrics()
        assert metrics.complete
        assert metrics.row_coverage == 1.0
        assert metrics.unavailable_shards == ()
        assert metrics.fault_events == []


class TestEdgeCases:
    def test_single_shard_cluster(self, log_table):
        cluster = SimulatedCluster.build(
            log_table, n_shards=1, store_options=_OPTIONS,
            config=ClusterConfig(n_machines=2, seed=1),
        )
        single = make_store(log_table)
        query = "SELECT country, COUNT(*) as c FROM data GROUP BY country ORDER BY c DESC LIMIT 5"
        result, metrics = cluster.execute(query)
        assert_results_equal(result.rows(), single.execute(query).rows())
        assert metrics.sub_queries == 1

    def test_query_matching_nothing(self, log_table):
        cluster = SimulatedCluster.build(
            log_table, n_shards=4, store_options=_OPTIONS,
            config=ClusterConfig(n_machines=4, seed=2),
        )
        result, __ = cluster.execute(
            "SELECT country, COUNT(*) FROM data WHERE country = 'ZZ' "
            "GROUP BY country"
        )
        assert result.rows() == []
        # Ungrouped aggregates still produce the single global row.
        result, __ = cluster.execute(
            "SELECT COUNT(*), SUM(latency) FROM data WHERE country = 'ZZ'"
        )
        assert result.rows() == [(0, None)]

    def test_having_applies_at_the_root(self, log_table):
        """HAVING must see *merged* totals, not per-shard partials."""
        cluster = SimulatedCluster.build(
            log_table, n_shards=6, store_options=_OPTIONS,
            config=ClusterConfig(n_machines=6, seed=3),
        )
        single = make_store(log_table)
        query = (
            "SELECT country, COUNT(*) as c FROM data GROUP BY country "
            "HAVING c > 300 ORDER BY c DESC"
        )
        result, __ = cluster.execute(query)
        assert_results_equal(result.rows(), single.execute(query).rows())
        # A per-shard HAVING would drop countries whose per-shard counts
        # fall below the threshold; verify at least one such country
        # survived (i.e. global > 300 but per-shard < 300 everywhere).
        survivors = {row[0] for row in result.rows()}
        borderline = [
            row[0]
            for row in single.execute(
                "SELECT country, COUNT(*) as c FROM data GROUP BY country "
                "HAVING c > 300 ORDER BY c ASC LIMIT 1"
            ).rows()
        ]
        assert set(borderline) <= survivors

    def test_min_replication_one(self, log_table):
        cluster = SimulatedCluster.build(
            log_table, n_shards=3, store_options=_OPTIONS,
            config=ClusterConfig(n_machines=3, replication=1, seed=4),
        )
        __, metrics = cluster.execute("SELECT COUNT(*) FROM data")
        assert metrics.replica_wins == 0
