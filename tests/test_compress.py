"""Codec tests: zippy, lzo-like, Huffman, RLE and the registry."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress import (
    available_codecs,
    bit_rle_counter_count,
    compress,
    decompress,
    get_codec,
    huffman_compress,
    huffman_decompress,
    lzo_compress,
    lzo_decompress,
    rle_decode_bytes,
    rle_decode_ints,
    rle_encode_bytes,
    rle_encode_ints,
    zippy_compress,
    zippy_decompress,
)
from repro.errors import CompressionError

_SAMPLES = [
    b"",
    b"a",
    b"ab",
    b"abc",
    b"aaaa",
    b"abcabcabcabcabcabcabc",
    b"x" * 10_000,
    bytes(range(256)) * 8,
    "ünïcödé €‰ text".encode("utf-8") * 40,
    b"\x00" * 100 + b"\x01" * 100 + b"\x00" * 100,
]


@pytest.mark.parametrize("codec", ["zippy", "lzo", "huffman", "zippy+huffman", "rle", "none"])
@pytest.mark.parametrize("sample", _SAMPLES, ids=range(len(_SAMPLES)))
def test_registry_round_trip(codec, sample):
    assert decompress(codec, compress(codec, sample)) == sample


# Parametrized over the registry itself, so a codec added later is
# round-trip-tested automatically (and REP003 keeps callers on the
# registry rather than the codec modules).
@pytest.mark.parametrize("codec", available_codecs())
@pytest.mark.parametrize("sample", _SAMPLES, ids=range(len(_SAMPLES)))
def test_every_registered_codec_round_trips(codec, sample):
    compressed = compress(codec, sample)
    assert isinstance(compressed, bytes)
    assert decompress(codec, compressed) == sample


@pytest.mark.parametrize("codec", available_codecs())
def test_every_registered_codec_resolves(codec):
    resolved = get_codec(codec)
    assert resolved.name == codec
    data = b"registry smoke test " * 20
    assert resolved.decompress(resolved.compress(data)) == data


def test_unknown_codec_raises():
    with pytest.raises(CompressionError):
        get_codec("gzip")


def test_available_codecs_sorted():
    codecs = available_codecs()
    assert codecs == sorted(codecs)
    assert "zippy" in codecs


class TestZippy:
    def test_repetitive_input_compresses(self):
        data = b"the quick brown fox " * 500
        assert len(zippy_compress(data)) < len(data) / 5

    def test_incompressible_overhead_is_small(self):
        import random

        random.seed(0)
        data = bytes(random.randrange(256) for _ in range(4096))
        assert len(zippy_compress(data)) < len(data) * 1.05

    def test_overlapping_copy_rle_style(self):
        # A long single-byte run exercises overlapping back-references.
        data = b"Z" * 100_000
        compressed = zippy_compress(data)
        # Copies carry at most 64 bytes each: ~3 bytes per 64 of input.
        assert len(compressed) < 6000
        assert zippy_decompress(compressed) == data

    def test_corrupt_offset_raises(self):
        # tag 0b01 (copy) with offset pointing before output start
        bad = bytes([4]) + bytes([0b01, 0xFF])
        with pytest.raises(CompressionError):
            zippy_decompress(bad)

    def test_size_mismatch_raises(self):
        good = zippy_compress(b"hello world hello world")
        # Corrupt the declared length in the preamble.
        bad = bytes([good[0] + 1]) + good[1:]
        with pytest.raises(CompressionError):
            zippy_decompress(bad)

    @settings(max_examples=150, deadline=None)
    @given(st.binary(max_size=3000))
    def test_round_trip_property(self, data):
        assert zippy_decompress(zippy_compress(data)) == data

    @settings(max_examples=50, deadline=None)
    @given(
        st.binary(min_size=1, max_size=24),
        st.integers(min_value=2, max_value=400),
    )
    def test_round_trip_repetitive_property(self, unit, repeats):
        data = unit * repeats
        assert zippy_decompress(zippy_compress(data)) == data


class TestLzo:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=2000))
    def test_round_trip_property(self, data):
        assert lzo_decompress(lzo_compress(data)) == data

    def test_better_ratio_than_zippy_on_text(self):
        # Section 5: the LZO variant compressed ~10% better than Zippy.
        data = (
            b"SELECT country, COUNT(*) FROM data GROUP BY country; "
            b"SELECT table_name, SUM(latency) FROM data GROUP BY table_name; "
        ) * 120
        assert len(lzo_compress(data)) <= len(zippy_compress(data))


class TestHuffman:
    def test_skewed_input_compresses(self):
        data = (b"a" * 900 + b"b" * 90 + b"c" * 10) * 10
        # Entropy ~0.57 bits/symbol; the 256-byte code table amortizes.
        assert len(huffman_compress(data)) < len(data) / 4

    def test_single_symbol(self):
        data = b"\x07" * 5000
        compressed = huffman_compress(data)
        assert huffman_decompress(compressed) == data
        # 1 bit per symbol plus the 256-byte table.
        assert len(compressed) < 256 + 5000 / 8 + 16

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=1500))
    def test_round_trip_property(self, data):
        assert huffman_decompress(huffman_compress(data)) == data

    def test_stacked_on_zippy_improves_ratio(self):
        # The "ZLIB with Huffman" effect: extra 20-30% on text.
        data = open(__file__, "rb").read() * 3
        plain = len(compress("zippy", data))
        stacked = len(compress("zippy+huffman", data))
        assert stacked < plain


class TestRleBytes:
    def test_runs_collapse(self):
        data = b"\x00" * 1000
        assert len(rle_encode_bytes(data)) < 10

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=1500))
    def test_round_trip_property(self, data):
        assert rle_decode_bytes(rle_encode_bytes(data)) == data


class TestRleInts:
    def test_paper_example(self):
        # "the column 0,0,0,1,1,1 would be encoded as (3,0),(3,1)"
        assert rle_encode_ints([0, 0, 0, 1, 1, 1]) == [(3, 0), (3, 1)]

    def test_empty(self):
        assert rle_encode_ints([]) == []
        assert rle_decode_ints([]) == []

    @given(st.lists(st.integers(min_value=0, max_value=5), max_size=200))
    def test_round_trip_property(self, values):
        assert rle_decode_ints(rle_encode_ints(values)) == values

    @given(st.lists(st.integers(min_value=0, max_value=3), max_size=200))
    def test_pair_count_equals_value_changes(self, values):
        pairs = rle_encode_ints(values)
        changes = sum(1 for a, b in zip(values, values[1:]) if a != b)
        assert len(pairs) == (changes + 1 if values else 0)


class TestBitRle:
    def test_empty_column(self):
        assert bit_rle_counter_count([]) == 0

    def test_constant_column_one_counter(self):
        assert bit_rle_counter_count([1] * 50) == 1

    def test_alternating_column(self):
        assert bit_rle_counter_count([0, 1, 0, 1]) == 4

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=300))
    def test_counters_equal_flips_plus_one(self, bits):
        flips = sum(1 for a, b in zip(bits, bits[1:]) if a != b)
        assert bit_rle_counter_count(bits) == flips + 1
