"""Sub-dictionary tests — Section 5 "Further Optimizing the Global-Dictionaries"."""

import numpy as np
import pytest

from repro.errors import DictionaryError
from repro.storage.dictionary import build_dictionary
from repro.storage.subdict import SubDictionarySet


def _make(n_values=200, n_chunks=10, per_chunk=30, seed=3, **kwargs):
    import random

    rng = random.Random(seed)
    values = [f"value-{i:04d}" for i in range(n_values)]
    dictionary = build_dictionary(values)
    chunk_gids = [
        np.array(sorted(rng.sample(range(n_values), per_chunk)), dtype=np.uint32)
        for __ in range(n_chunks)
    ]
    return dictionary, chunk_gids, SubDictionarySet(dictionary, chunk_gids, **kwargs)


class TestSubDictionarySet:
    def test_lookup_finds_value(self):
        dictionary, chunks, subdicts = _make()
        gid = int(chunks[2][5])
        assert subdicts.lookup_global_id(dictionary.value(gid)) == gid

    def test_lookup_missing_value(self):
        __, __, subdicts = _make()
        assert subdicts.lookup_global_id("not-a-member") is None

    def test_active_chunks_limit_loads(self):
        dictionary, chunks, subdicts = _make(group_size=2, hot_fraction=0.0)
        gid = int(chunks[0][0])
        subdicts.lookup_global_id(dictionary.value(gid), active_chunks={0})
        # Only the sub-dictionary covering chunk 0 may load.
        assert subdicts.stats.loads <= 1

    def test_inactive_groups_are_skipped(self):
        dictionary, chunks, subdicts = _make(group_size=2, hot_fraction=0.0)
        # Probe a value only in chunk 9's group while chunk 0 is active:
        only_late = set(chunks[9].tolist())
        for early in chunks[:8]:
            only_late -= set(early.tolist())
        gid = sorted(only_late)[0]
        result = subdicts.lookup_global_id(
            dictionary.value(gid), active_chunks={0}
        )
        assert result is None  # not in any active chunk's group
        assert subdicts.stats.group_skips > 0

    def test_resident_less_than_total_after_narrow_query(self):
        dictionary, chunks, subdicts = _make(group_size=2, hot_fraction=0.05)
        gid = int(chunks[3][1])
        subdicts.lookup_global_id(dictionary.value(gid), active_chunks={3})
        assert 0 < subdicts.resident_size_bytes() < subdicts.total_size_bytes()

    def test_bloom_skips_counted(self):
        __, __, subdicts = _make(group_size=2, hot_fraction=0.0)
        subdicts.lookup_global_id("definitely-absent-value")
        assert subdicts.stats.bloom_skips > 0

    def test_lookup_value_loads_covering_subdict(self):
        dictionary, chunks, subdicts = _make()
        gid = int(chunks[1][0])
        assert subdicts.lookup_value(gid) == dictionary.value(gid)
        assert subdicts.stats.loads >= 1

    def test_lookup_value_missing_raises(self):
        n_values = 50
        dictionary, __, subdicts = _make(n_values=n_values, per_chunk=10)
        # A gid never occurring in any chunk and not hot may be absent.
        with pytest.raises(DictionaryError):
            subdicts.lookup_value(10**9)

    def test_evict_all_resets_residency(self):
        dictionary, chunks, subdicts = _make()
        subdicts.lookup_global_id(dictionary.value(int(chunks[0][0])))
        subdicts.evict_all()
        assert subdicts.resident_size_bytes() == 0

    def test_out_of_range_gid_rejected(self):
        values = ["a", "b"]
        dictionary = build_dictionary(values)
        with pytest.raises(DictionaryError):
            SubDictionarySet(dictionary, [np.array([5], dtype=np.uint32)])

    def test_invalid_parameters(self):
        dictionary = build_dictionary(["a"])
        chunks = [np.array([0], dtype=np.uint32)]
        with pytest.raises(DictionaryError):
            SubDictionarySet(dictionary, chunks, hot_fraction=2.0)
        with pytest.raises(DictionaryError):
            SubDictionarySet(dictionary, chunks, group_size=0)

    def test_n_subdicts(self):
        __, __, subdicts = _make(n_chunks=10, group_size=3)
        assert subdicts.n_subdicts == 1 + 4  # hot + ceil(10/3)


class TestFromField:
    def test_builds_from_datastore_field(self, log_store):
        from repro.storage.subdict import SubDictionarySet

        field = log_store.field("table_name")
        subdicts = SubDictionarySet.from_field(
            field, hot_fraction=0.05, group_size=16
        )
        # Resolving one value over one active chunk loads only a
        # fraction of the dictionary.
        value = field.dictionary.value(len(field.dictionary) // 2)
        gid = subdicts.lookup_global_id(value, active_chunks={0, 1, 2})
        if gid is not None:
            assert field.dictionary.value(gid) == value
        assert subdicts.resident_size_bytes() < subdicts.total_size_bytes()

    def test_narrow_query_residency_win(self, log_store):
        from repro.storage.subdict import SubDictionarySet

        field = log_store.field("table_name")
        subdicts = SubDictionarySet.from_field(
            field, hot_fraction=0.02, group_size=8
        )
        chunk_dict = field.chunks[3].chunk_dict
        value = field.dictionary.value(int(chunk_dict[0]))
        gid = subdicts.lookup_global_id(value, active_chunks={3})
        assert gid == int(chunk_dict[0])
        # With one active chunk, most sub-dictionaries stay unloaded.
        assert subdicts.resident_size_bytes() < subdicts.total_size_bytes() / 2
