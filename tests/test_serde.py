"""Store persistence tests: save/load round trips."""

import pytest

from repro.core.datastore import DataStore, DataStoreOptions
from repro.errors import StorageError
from repro.storage.serde import load_store, save_store
from repro.testing import assert_results_equal
from repro.workload.queries import paper_queries
from tests.conftest import make_store


class TestSaveLoad:
    def test_round_trip_results(self, log_table, tmp_path):
        store = make_store(log_table)
        path = str(tmp_path / "logs.pds")
        size = save_store(store, path)
        assert size > 0
        loaded = load_store(path)
        for sql in paper_queries() + [
            "SELECT country, COUNT(DISTINCT table_name) as cd FROM data "
            "GROUP BY country ORDER BY cd DESC LIMIT 5",
            "SELECT COUNT(*) FROM data WHERE latency > 200 AND country = 'US'",
        ]:
            assert_results_equal(
                loaded.execute(sql).rows(), store.execute(sql).rows(), context=sql
            )

    def test_round_trip_structure(self, log_table, tmp_path):
        store = make_store(log_table)
        path = str(tmp_path / "logs.pds")
        save_store(store, path)
        loaded = load_store(path)
        assert loaded.n_rows == store.n_rows
        assert loaded.n_chunks == store.n_chunks
        assert loaded.options == store.options
        for name in ("country", "table_name", "latency"):
            original = store.field(name)
            restored = loaded.field(name)
            assert restored.dictionary.values() == original.dictionary.values()
            for a, b in zip(original.chunks, restored.chunks):
                assert a.chunk_dict.tolist() == b.chunk_dict.tolist()
                assert a.elements.as_array().tolist() == (
                    b.elements.as_array().tolist()
                )

    def test_sizes_preserved(self, log_table, tmp_path):
        store = make_store(log_table)
        path = str(tmp_path / "logs.pds")
        save_store(store, path)
        loaded = load_store(path)
        for name in ("country", "table_name", "latency"):
            assert loaded.field(name).size_bytes() == store.field(name).size_bytes()

    def test_unoptimized_store_round_trips(self, log_table, tmp_path):
        store = DataStore.from_table(
            log_table,
            DataStoreOptions(optimized_columns=False, optimized_dicts=False),
        )
        path = str(tmp_path / "basic.pds")
        save_store(store, path)
        loaded = load_store(path)
        assert_results_equal(
            loaded.execute(paper_queries()[0]).rows(),
            store.execute(paper_queries()[0]).rows(),
        )

    def test_null_values_round_trip(self, null_log_table, tmp_path):
        store = make_store(null_log_table)
        path = str(tmp_path / "nulls.pds")
        save_store(store, path)
        loaded = load_store(path)
        sql = "SELECT COUNT(*), COUNT(latency) FROM data"
        assert loaded.execute(sql).rows() == store.execute(sql).rows()

    def test_virtual_fields_not_persisted_but_rematerialize(
        self, log_table, tmp_path
    ):
        store = make_store(log_table)
        store.execute(paper_queries()[1])  # materializes date(timestamp)
        path = str(tmp_path / "logs.pds")
        save_store(store, path)
        loaded = load_store(path)
        assert all(not f.virtual for f in loaded.fields.values())
        assert_results_equal(
            loaded.execute(paper_queries()[1]).rows(),
            store.execute(paper_queries()[1]).rows(),
        )

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.pds")
        open(path, "wb").write(b"NOPE" + b"\x00" * 16)
        with pytest.raises(StorageError):
            load_store(path)

    def test_file_smaller_than_csv(self, log_table, tmp_path):
        from repro.formats import write_csv

        store = make_store(log_table)
        pds = save_store(store, str(tmp_path / "s.pds"))
        csv = write_csv(log_table, str(tmp_path / "s.csv"))
        assert pds < csv
