"""fsck tests: clean stores pass; injected corruption is caught, with a
distinct finding code per corruption class."""

import copy
import json

import numpy as np
import pytest

from repro.analysis import fsck_file, fsck_store
from repro.core.datastore import DataStore, DataStoreOptions
from repro.monitoring import counters
from repro.storage.elements import ConstantElements, PackedElements, encode_elements
from repro.storage.serde import save_store
from repro.workload.generator import LogsConfig, generate_query_logs


@pytest.fixture(scope="module")
def pristine() -> DataStore:
    """A small partitioned store; tests deepcopy it before corrupting."""
    table = generate_query_logs(
        LogsConfig(n_rows=800, n_days=20, n_teams=8, seed=13)
    )
    return DataStore.from_table(
        table,
        DataStoreOptions(
            partition_fields=("country", "table_name"),
            max_chunk_rows=100,
            reorder_rows=True,
            optimized_dicts=False,
        ),
    )


@pytest.fixture
def store(pristine) -> DataStore:
    return copy.deepcopy(pristine)


def _chunk_with_dict_size(store, field_name, minimum=2):
    field = store.field(field_name)
    for chunk in field.chunks:
        if chunk.chunk_dict.size >= minimum:
            return field, chunk
    raise AssertionError(
        f"no chunk of {field_name!r} has >= {minimum} distinct values"
    )


class TestCleanStore:
    def test_pristine_store_is_clean(self, pristine):
        report = fsck_store(pristine)
        assert report.ok, "\n" + report.to_text()
        assert report.items_checked > 50

    def test_store_without_partitioning_is_clean(self):
        table = generate_query_logs(LogsConfig(n_rows=300, seed=5))
        basic = DataStore.from_table(
            table,
            DataStoreOptions(
                partition_fields=None,
                optimized_columns=False,
                optimized_dicts=False,
            ),
        )
        assert fsck_store(basic).ok

    def test_optimized_store_is_clean(self, log_store):
        # The session-wide optimized store (tries, bitsets, constants).
        assert fsck_store(log_store).ok

    def test_clean_file_round_trip(self, pristine, tmp_path):
        path = str(tmp_path / "clean.pds")
        save_store(pristine, path)
        assert fsck_file(path).ok

    def test_counters_advance(self, pristine):
        before = counters.get("analysis.fsck.stores_checked")
        checks_before = counters.get("analysis.fsck.checks_run")
        fsck_store(pristine)
        assert counters.get("analysis.fsck.stores_checked") == before + 1
        assert counters.get("analysis.fsck.checks_run") > checks_before

    def test_json_output_shape(self, pristine):
        payload = json.loads(fsck_store(pristine).to_json())
        assert payload["tool"] == "fsck"
        assert payload["ok"] is True
        assert payload["findings"] == []


class TestCorruptionDetection:
    """Each injected corruption class yields its own finding code."""

    def test_unsorted_global_dictionary(self, store):
        dictionary = store.field("country").dictionary
        values = dictionary._values
        assert len(values) >= 2
        values[0], values[1] = values[1], values[0]
        report = fsck_store(store, check_serde=False)
        assert "FSCK001" in report.codes()

    def test_unsorted_chunk_dictionary(self, store):
        _, chunk = _chunk_with_dict_size(store, "table_name")
        chunk.chunk_dict = chunk.chunk_dict[::-1].copy()
        report = fsck_store(store, check_serde=False)
        assert "FSCK003" in report.codes()

    def test_chunk_dict_exceeds_global_dictionary(self, store):
        field, chunk = _chunk_with_dict_size(store, "table_name", minimum=1)
        chunk.chunk_dict = chunk.chunk_dict.copy()
        chunk.chunk_dict[-1] = len(field.dictionary) + 7
        report = fsck_store(store, check_serde=False)
        assert "FSCK004" in report.codes()

    def test_element_chunk_id_out_of_range(self, store):
        _, chunk = _chunk_with_dict_size(store, "table_name", minimum=1)
        n = chunk.elements.n_rows
        chunk.elements = PackedElements(
            np.full(n, chunk.chunk_dict.size + 3, dtype=np.uint32), 4
        )
        report = fsck_store(store, check_serde=False)
        assert "FSCK005" in report.codes()

    def test_stale_min_max_bounds(self, store):
        # Rows no longer reference the last chunk-dict slot, so the
        # chunk's max_global_id bound is stale.
        _, chunk = _chunk_with_dict_size(store, "table_name")
        n = chunk.elements.n_rows
        chunk.elements = encode_elements(
            np.zeros(n, dtype=np.uint32), chunk.chunk_dict.size, optimized=False
        )
        report = fsck_store(store, check_serde=False)
        assert "FSCK006" in report.codes()
        [finding] = report.by_code("FSCK006")[:1]
        assert "stale" in finding.message

    def test_row_count_mismatch(self, store):
        field = store.field("latency")
        chunk = field.chunks[0]
        chunk.elements = ConstantElements(chunk.elements.n_rows + 3, 0)
        report = fsck_store(store, check_serde=False)
        assert "FSCK007" in report.codes()

    def test_partition_range_overlap(self, store):
        # Stretch one chunk's first-partition-field range over its
        # neighbour's: composite range partitioning forbids overlap.
        field = store.field("country")
        intervals = sorted(
            (int(c.chunk_dict[0]), int(c.chunk_dict[-1]), i)
            for i, c in enumerate(field.chunks)
            if c.chunk_dict.size
        )
        pair = next(
            (a, b)
            for a, b in zip(intervals, intervals[1:])
            if (a[0], a[1]) != (b[0], b[1])
        )
        (lo_a, _, index), (_, hi_b, _) = pair
        chunk = field.chunks[index]
        chunk.chunk_dict = np.array(
            sorted({lo_a, hi_b}), dtype=np.uint32
        )
        n = chunk.elements.n_rows
        chunk.elements = encode_elements(
            np.arange(n, dtype=np.uint32) % chunk.chunk_dict.size,
            int(chunk.chunk_dict.size),
            optimized=False,
        )
        report = fsck_store(store, check_serde=False)
        assert "FSCK008" in report.codes()

    def test_truncated_store_file(self, pristine, tmp_path):
        path = str(tmp_path / "trunc.pds")
        size = save_store(pristine, path)
        with open(path, "r+b") as handle:
            handle.truncate(size // 2)
        report = fsck_file(path)
        assert report.codes() == {"FSCK010"}

    def test_unreadable_file(self, tmp_path):
        report = fsck_file(str(tmp_path / "missing.pds"))
        assert report.codes() == {"FSCK010"}

    def test_distinct_codes_per_corruption_class(self):
        # The acceptance bar: >= 5 corruption classes, each with its own
        # stable code (documented in repro.analysis.catalog).
        from repro.analysis.catalog import fsck_codes

        exercised = {
            "FSCK001",  # unsorted global dictionary
            "FSCK003",  # unsorted chunk-dictionary
            "FSCK004",  # chunk-dict id beyond the global dictionary
            "FSCK005",  # element chunk-id out of range
            "FSCK006",  # stale min/max bounds (unused edge slot)
            "FSCK007",  # row-count disagreement
            "FSCK008",  # partition range overlap
            "FSCK010",  # unparseable store file
        }
        assert len(exercised) >= 5
        assert exercised <= set(fsck_codes())


class TestFindingsNeverRaise:
    def test_heavily_corrupted_store_still_reports(self, store):
        # Multiple simultaneous corruptions: fsck must return findings,
        # not raise.
        dictionary = store.field("country").dictionary
        dictionary._values[0], dictionary._values[1] = (
            dictionary._values[1],
            dictionary._values[0],
        )
        field = store.field("table_name")
        for chunk in field.chunks[:2]:
            chunk.chunk_dict = chunk.chunk_dict[::-1].copy()
        store.n_rows += 11
        report = fsck_store(store, check_serde=False)
        assert not report.ok
        assert len(report.codes()) >= 2
