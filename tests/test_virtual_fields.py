"""Virtual field (materialized expression) tests — Section 5."""

import pytest

from repro.core.table import Table
from repro.core.datastore import DataStore, DataStoreOptions
from repro.errors import BindError, UnsupportedQueryError
from repro.sql.ast_nodes import FieldRef
from repro.sql.parser import parse_query
from tests.conftest import make_store


def _expr(sql: str):
    return parse_query(f"SELECT {sql} FROM data").select[0].expr


class TestEnsureField:
    def test_plain_field_passthrough(self, log_store):
        assert log_store.ensure_field(FieldRef("country")) == "country"

    def test_unknown_field_rejected(self, log_store):
        with pytest.raises(BindError):
            log_store.ensure_field(FieldRef("missing"))

    def test_materialized_once(self, log_table):
        store = make_store(log_table)
        first = store.ensure_field(_expr("date(timestamp)"))
        second = store.ensure_field(_expr("date(timestamp)"))
        assert first == second
        assert store.fields[first].virtual

    def test_single_field_expression_values(self, log_table):
        store = make_store(log_table)
        name = store.ensure_field(_expr("year(timestamp)"))
        field = store.fields[name]
        assert field.dictionary.values() == [2011]

    def test_multi_field_expression(self):
        table = Table.from_columns({"a": [1, 2, 3, 4], "b": [10, 20, 30, 40]})
        store = DataStore.from_table(table, DataStoreOptions())
        name = store.ensure_field(_expr("a + b"))
        field = store.fields[name]
        decoded = field.value_array()[field.row_global_ids(0)].tolist()
        assert decoded == [11, 22, 33, 44]

    def test_constant_expression(self, log_store):
        name = log_store.ensure_field(_expr("1 + 1"))
        field = log_store.fields[name]
        assert field.dictionary.values() == [2]

    def test_boolean_expression_coerced_to_int(self):
        table = Table.from_columns({"a": [1, 5, 9]})
        store = DataStore.from_table(table, DataStoreOptions())
        name = store.ensure_field(_expr("a > 4"))
        field = store.fields[name]
        decoded = field.value_array()[field.row_global_ids(0)].tolist()
        assert decoded == [0, 1, 1]

    def test_null_propagates_into_virtual_field(self):
        table = Table.from_columns({"a": [1, None, 3]})
        store = DataStore.from_table(table, DataStoreOptions())
        name = store.ensure_field(_expr("a * 2"))
        field = store.fields[name]
        decoded = field.value_array()[field.row_global_ids(0)].tolist()
        assert decoded == [2, None, 6]

    def test_aggregate_cannot_materialize(self, log_store):
        with pytest.raises(UnsupportedQueryError):
            log_store.ensure_field(_expr("SUM(latency)"))


class TestVirtualFieldSkipping:
    def test_restriction_on_expression_skips_chunks(self, log_table):
        # Section 5: materialized date(timestamp) enables chunk
        # skipping via its chunk-dictionaries.
        store = make_store(log_table)
        dates = sorted(
            {
                __import__("repro.sql.functions", fromlist=["apply_scalar"])
                .apply_scalar("date", [ts])
                for ts in log_table.column("timestamp").values
            }
        )
        probe = dates[0]
        result = store.execute(
            "SELECT country, COUNT(*) FROM data "
            f"WHERE date(timestamp) IN ('{probe}') GROUP BY country"
        )
        # The first query materializes; re-run to exercise reuse.
        again = store.execute(
            "SELECT country, COUNT(*) FROM data "
            f"WHERE date(timestamp) IN ('{probe}') GROUP BY country"
        )
        assert again.rows() == result.rows()
        expected = sum(
            1
            for ts in log_table.column("timestamp").values
            if __import__("repro.sql.functions", fromlist=["apply_scalar"])
            .apply_scalar("date", [ts])
            == probe
        )
        assert sum(row[1] for row in result.rows()) == expected

    def test_contains_expression(self, log_table):
        store = make_store(log_table)
        result = store.execute(
            "SELECT COUNT(*) FROM data WHERE contains(table_name, 'team00') = 1"
        )
        expected = sum(
            1
            for name in log_table.column("table_name").values
            if "team00" in name
        )
        assert result.rows() == [(expected,)]


class TestCompositeField:
    def test_composite_round_trip(self, log_table):
        store = make_store(log_table)
        name = store.ensure_composite_field(["country", "user_name"])
        field = store.fields[name]
        expected_pairs = set(
            zip(
                log_table.column("country").values,
                log_table.column("user_name").values,
            )
        )
        assert set(field.dictionary.values()) == expected_pairs

    def test_composite_reused(self, log_table):
        store = make_store(log_table)
        first = store.ensure_composite_field(["country", "user_name"])
        second = store.ensure_composite_field(["country", "user_name"])
        assert first == second
