"""Nested relational model tests: repeated fields, flattening, record-io."""

import pytest

from repro.core.datastore import DataStore, DataStoreOptions
from repro.core.table import DataType
from repro.errors import TableError
from repro.nested import (
    RECORD_ID_FIELD,
    NestedColumn,
    NestedTable,
    read_nested_recordio,
    write_nested_recordio,
)


@pytest.fixture()
def search_logs() -> NestedTable:
    """Web-search records: scalar country, repeated result clicks."""
    return NestedTable(
        [
            NestedColumn("country", ["DE", "US", "DE", "FR"]),
            NestedColumn("query", ["cat", "dog", "auto", "cat"]),
            NestedColumn(
                "clicked_rank",
                [[1, 3], [2], [], [1, 2, 5]],
                repeated=True,
            ),
        ]
    )


class TestNestedTable:
    def test_shape(self, search_logs):
        assert search_logs.n_records == 4
        assert search_logs.repeated_fields == ["clicked_rank"]

    def test_record_access(self, search_logs):
        assert search_logs.record(0) == {
            "country": "DE",
            "query": "cat",
            "clicked_rank": [1, 3],
        }
        with pytest.raises(TableError):
            search_logs.record(9)

    def test_repeated_requires_lists(self):
        with pytest.raises(TableError):
            NestedColumn("x", [1, 2], repeated=True)

    def test_repeated_type_inferred_from_elements(self, search_logs):
        assert search_logs.column("clicked_rank").dtype is DataType.INT

    def test_ragged_rejected(self):
        with pytest.raises(TableError):
            NestedTable(
                [NestedColumn("a", [1]), NestedColumn("b", [1, 2])]
            )


class TestFlatten:
    def test_one_row_per_element(self, search_logs):
        flat = search_logs.flatten()
        # 2 + 1 + 1(empty->NULL) + 3 = 7 rows
        assert flat.n_rows == 7
        assert flat.field_names == [
            RECORD_ID_FIELD, "country", "query", "clicked_rank",
        ]

    def test_scalars_duplicated(self, search_logs):
        flat = search_logs.flatten()
        rows = list(flat.iter_rows())
        assert rows[0] == (0, "DE", "cat", 1)
        assert rows[1] == (0, "DE", "cat", 3)

    def test_empty_list_keeps_record_with_null(self, search_logs):
        flat = search_logs.flatten()
        null_rows = [r for r in flat.iter_rows() if r[3] is None]
        assert len(null_rows) == 1
        assert null_rows[0][1] == "DE"  # record 2

    def test_no_repeated_fields_identity_plus_record_id(self):
        table = NestedTable(
            [NestedColumn("a", [1, 2]), NestedColumn("b", ["x", "y"])]
        )
        flat = table.flatten()
        assert flat.n_rows == 2
        assert flat.column(RECORD_ID_FIELD).values == [0, 1]

    def test_two_repeated_fields_need_choice(self):
        table = NestedTable(
            [
                NestedColumn("a", [[1]], repeated=True),
                NestedColumn("b", [["x"]], repeated=True),
            ]
        )
        with pytest.raises(TableError):
            table.flatten()
        with pytest.raises(TableError):
            table.flatten("a")  # b is still repeated

    def test_flatten_scalar_field_rejected(self, search_logs):
        with pytest.raises(TableError):
            search_logs.flatten("country")


class TestQueryingFlattened:
    def test_value_vs_record_counts(self, search_logs):
        """COUNT(*) counts values; COUNT(DISTINCT __record_id) records."""
        store = DataStore.from_table(
            search_logs.flatten(), DataStoreOptions()
        )
        result = store.execute(
            "SELECT COUNT(clicked_rank), COUNT(DISTINCT __record_id) "
            "FROM data"
        )
        assert result.rows() == [(6, 4)]  # 6 clicks over 4 records

    def test_group_by_scalar_over_elements(self, search_logs):
        store = DataStore.from_table(
            search_logs.flatten(), DataStoreOptions()
        )
        result = store.execute(
            "SELECT country, COUNT(clicked_rank) as clicks, "
            "COUNT(DISTINCT __record_id) as searches FROM data "
            "GROUP BY country ORDER BY country ASC"
        )
        assert result.rows() == [("DE", 2, 2), ("FR", 3, 1), ("US", 1, 1)]

    def test_restriction_on_repeated_element(self, search_logs):
        store = DataStore.from_table(
            search_logs.flatten(), DataStoreOptions()
        )
        # Records with at least one click at rank 1.
        result = store.execute(
            "SELECT COUNT(DISTINCT __record_id) FROM data "
            "WHERE clicked_rank = 1"
        )
        assert result.rows() == [(2,)]


class TestNestedRecordIo:
    def test_round_trip(self, search_logs, tmp_path):
        path = str(tmp_path / "nested.rio")
        size = write_nested_recordio(search_logs, path)
        assert size > 0
        loaded = read_nested_recordio(
            path,
            ["country", "query", "clicked_rank"],
            [DataType.STRING, DataType.STRING, DataType.INT],
            [False, False, True],
        )
        assert loaded.n_records == search_logs.n_records
        for index in range(search_logs.n_records):
            assert loaded.record(index) == search_logs.record(index)

    def test_flatten_after_round_trip_matches(self, search_logs, tmp_path):
        path = str(tmp_path / "nested.rio")
        write_nested_recordio(search_logs, path)
        loaded = read_nested_recordio(
            path,
            ["country", "query", "clicked_rank"],
            [DataType.STRING, DataType.STRING, DataType.INT],
            [False, False, True],
        )
        assert loaded.flatten() == search_logs.flatten()

    def test_schema_length_mismatch(self, tmp_path):
        path = str(tmp_path / "x.rio")
        open(path, "wb").write(b"")
        with pytest.raises(TableError):
            read_nested_recordio(path, ["a"], [DataType.INT], [False, True])
