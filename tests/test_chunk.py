"""ColumnChunk / Chunk tests — the double dictionary layout."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.chunk import Chunk, ColumnChunk


class TestColumnChunk:
    def _chunk(self) -> ColumnChunk:
        # Figure 1's chunk 0: rows dereference through the chunk dict.
        return ColumnChunk.from_global_ids(
            np.array([5, 2, 0, 9, 0, 0, 2, 1, 5, 2], dtype=np.uint32)
        )

    def test_chunk_dict_is_sorted_unique(self):
        chunk = self._chunk()
        assert chunk.chunk_dict.tolist() == [0, 1, 2, 5, 9]
        assert chunk.n_distinct == 5
        assert chunk.n_rows == 10

    def test_row_reconstruction(self):
        chunk = self._chunk()
        assert chunk.row_global_ids().tolist() == [5, 2, 0, 9, 0, 0, 2, 1, 5, 2]

    def test_chunk_ids_dense_ascending(self):
        chunk = self._chunk()
        # chunk-ids are "assigned to the sorted global-ids in an
        # ascending manner" (Section 2.3).
        assert chunk.chunk_id_of(0) == 0
        assert chunk.chunk_id_of(9) == 4
        assert chunk.chunk_id_of(3) is None

    def test_membership(self):
        chunk = self._chunk()
        assert chunk.contains_global_id(5)
        assert not chunk.contains_global_id(7)
        assert chunk.contains_any(np.array([7, 9], dtype=np.uint32))
        assert not chunk.contains_any(np.array([3, 4], dtype=np.uint32))
        assert not chunk.contains_any(np.array([], dtype=np.uint32))

    def test_chunk_ids_of_drops_missing(self):
        chunk = self._chunk()
        got = chunk.chunk_ids_of(np.array([0, 3, 9], dtype=np.uint32))
        assert got.tolist() == [0, 4]

    def test_min_max(self):
        chunk = self._chunk()
        assert chunk.min_global_id() == 0
        assert chunk.max_global_id() == 9

    def test_empty_min_max_raises(self):
        chunk = ColumnChunk.from_global_ids(np.array([], dtype=np.uint32))
        with pytest.raises(StorageError):
            chunk.min_global_id()

    def test_sizes(self):
        chunk = self._chunk()
        assert chunk.dict_size_bytes() == 4 * 5
        assert chunk.elements_size_bytes() == 10  # 5 distinct -> 1 byte each
        assert chunk.size_bytes() == 30

    def test_unsorted_dict_rejected(self):
        from repro.storage.elements import encode_elements

        with pytest.raises(StorageError):
            ColumnChunk(
                np.array([3, 1], dtype=np.uint32),
                encode_elements(np.array([0, 1], dtype=np.uint32), 2),
            )


class TestChunk:
    def test_column_access(self):
        a = ColumnChunk.from_global_ids(np.array([1, 2], dtype=np.uint32))
        chunk = Chunk(0, 2, {"a": a})
        assert chunk.column("a") is a
        with pytest.raises(StorageError):
            chunk.column("b")

    def test_row_count_mismatch(self):
        a = ColumnChunk.from_global_ids(np.array([1], dtype=np.uint32))
        with pytest.raises(StorageError):
            Chunk(0, 2, {"a": a})

    def test_add_column(self):
        a = ColumnChunk.from_global_ids(np.array([1, 2], dtype=np.uint32))
        chunk = Chunk(0, 2, {"a": a})
        b = ColumnChunk.from_global_ids(np.array([0, 0], dtype=np.uint32))
        chunk.add_column("b", b)
        assert chunk.size_bytes(["b"]) == b.size_bytes()
