"""Composite range partitioning tests — Section 2.2."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.table import Table
from repro.errors import PartitionError
from repro.partition.composite import PartitionSpec, partition_table


def _table(countries, names=None, extra=None):
    data = {"country": countries}
    if names is not None:
        data["name"] = names
    if extra is not None:
        data["extra"] = extra
    return Table.from_columns(data)


class TestPartitionSpec:
    def test_requires_fields(self):
        with pytest.raises(PartitionError):
            PartitionSpec((), 10)

    def test_requires_positive_threshold(self):
        with pytest.raises(PartitionError):
            PartitionSpec(("a",), 0)


class TestPartitionTable:
    def test_small_table_single_chunk(self):
        table = _table(["a", "b", "c"])
        chunks = partition_table(table, PartitionSpec(("country",), 10))
        assert len(chunks) == 1
        assert chunks[0].tolist() == [0, 1, 2]

    def test_rows_partition_exactly(self):
        import random

        random.seed(1)
        table = _table([random.choice("abcdef") for __ in range(500)])
        chunks = partition_table(table, PartitionSpec(("country",), 100))
        combined = np.sort(np.concatenate(chunks))
        assert combined.tolist() == list(range(500))

    def test_chunks_respect_threshold_when_splittable(self):
        import random

        random.seed(2)
        table = _table(
            [random.choice("ab") for __ in range(400)],
            [f"n{random.randrange(50)}" for __ in range(400)],
        )
        chunks = partition_table(table, PartitionSpec(("country", "name"), 60))
        assert max(chunk.size for chunk in chunks) <= 60

    def test_range_split_is_a_value_range(self):
        # Every chunk must cover a contiguous value range on the first
        # field that distinguishes its rows.
        import random

        random.seed(3)
        countries = [random.choice("abcdef") for __ in range(600)]
        table = _table(countries)
        chunks = partition_table(table, PartitionSpec(("country",), 150))
        ranges = []
        for rows in chunks:
            values = sorted({countries[i] for i in rows})
            ranges.append((values[0], values[-1]))
        # Ranges must not interleave: sort by low end and check highs.
        ranges.sort()
        for (__, high), (low, __) in zip(ranges, ranges[1:]):
            assert high <= low

    def test_unsplittable_chunk_exceeds_threshold(self):
        table = _table(["same"] * 100)
        chunks = partition_table(table, PartitionSpec(("country",), 10))
        assert len(chunks) == 1
        assert chunks[0].size == 100

    def test_second_field_used_when_first_constant(self):
        table = _table(["same"] * 100, [f"n{i % 10}" for i in range(100)])
        chunks = partition_table(table, PartitionSpec(("country", "name"), 30))
        assert len(chunks) > 1
        assert max(chunk.size for chunk in chunks) <= 30

    def test_unknown_field_rejected(self):
        table = _table(["a"])
        with pytest.raises(PartitionError):
            partition_table(table, PartitionSpec(("missing",), 10))

    def test_heaviest_first_balances(self):
        # Skewed data: the heaviest-first strategy still yields chunks
        # within ~2x of each other when splits are available.
        import random

        random.seed(4)
        values = [random.choice("aaaabbc") for __ in range(1000)]
        names = [f"n{random.randrange(100)}" for __ in range(1000)]
        table = _table(values, names)
        chunks = partition_table(table, PartitionSpec(("country", "name"), 200))
        sizes = sorted(chunk.size for chunk in chunks)
        assert sizes[-1] <= 200

    def test_nulls_sort_first_and_split_cleanly(self):
        table = _table([None] * 50 + ["a"] * 50 + ["b"] * 50)
        chunks = partition_table(table, PartitionSpec(("country",), 60))
        combined = np.sort(np.concatenate(chunks))
        assert combined.size == 150

    def test_deterministic(self):
        import random

        random.seed(5)
        countries = [random.choice("abcd") for __ in range(300)]
        table = _table(countries)
        spec = PartitionSpec(("country",), 80)
        first = [c.tolist() for c in partition_table(table, spec)]
        second = [c.tolist() for c in partition_table(table, spec)]
        assert first == second

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from(["a", "b", "c", "d", "e"]),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=100),
    )
    def test_partition_preserves_rows_property(self, countries, threshold):
        table = _table(countries)
        chunks = partition_table(table, PartitionSpec(("country",), threshold))
        combined = np.sort(np.concatenate(chunks))
        assert combined.tolist() == list(range(len(countries)))
